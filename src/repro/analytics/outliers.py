"""Distance-based trajectory outlier detection.

The paper cites trajectory outlier detection [22, 27] among the analytics
DITA serves.  We implement the classic distance-based definition: a
trajectory is an outlier when fewer than ``min_neighbours`` other
trajectories lie within ``tau`` of it — which is exactly one similarity
self-join plus a degree count.  A kNN-based score (distance to the k-th
neighbour) is provided for ranked output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.engine import DITAEngine
from ..core.knn import knn_search
from .clustering import similarity_graph


@dataclass(frozen=True)
class OutlierReport:
    """Outlier ids plus each trajectory's neighbour count."""

    outlier_ids: List[int]
    neighbour_counts: Dict[int, int]

    def is_outlier(self, traj_id: int) -> bool:
        return traj_id in set(self.outlier_ids)


def detect_outliers(
    engine: DITAEngine, tau: float, min_neighbours: int = 1
) -> OutlierReport:
    """Trajectories with fewer than ``min_neighbours`` tau-neighbours."""
    if min_neighbours < 1:
        raise ValueError("min_neighbours must be >= 1")
    adj = similarity_graph(engine, tau)
    counts = {tid: len(nbrs) for tid, nbrs in adj.items()}
    outliers = sorted(tid for tid, c in counts.items() if c < min_neighbours)
    return OutlierReport(outlier_ids=outliers, neighbour_counts=counts)


def knn_outlier_scores(engine: DITAEngine, k: int = 3) -> Dict[int, float]:
    """The k-NN outlier score of every trajectory: its distance to its k-th
    nearest *other* trajectory (bigger = more anomalous)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    scores: Dict[int, float] = {}
    for part in engine.partitions.values():
        for t in part:
            # k+1 because the trajectory itself is its own 0-distance NN
            neighbours = knn_search(engine, t, k + 1)
            others = [d for nbr, d in neighbours if nbr.traj_id != t.traj_id]
            scores[t.traj_id] = others[k - 1] if len(others) >= k else float("inf")
    return scores


def top_outliers(engine: DITAEngine, k: int = 3, top: int = 10) -> List[int]:
    """Ids of the ``top`` most anomalous trajectories by k-NN score."""
    scores = knn_outlier_scores(engine, k)
    return [tid for tid, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:top]]
