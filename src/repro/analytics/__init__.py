"""Trajectory analytics built on DITA: clustering, frequent routes, outliers."""

from .classification import KNNTrajectoryClassifier
from .clustering import NOISE, ClusteringResult, TrajectoryDBSCAN, similarity_graph
from .frequent import FrequentRoute, mine_frequent_routes, route_for
from .outliers import OutlierReport, detect_outliers, knn_outlier_scores, top_outliers

__all__ = [
    "NOISE",
    "ClusteringResult",
    "FrequentRoute",
    "KNNTrajectoryClassifier",
    "OutlierReport",
    "TrajectoryDBSCAN",
    "detect_outliers",
    "knn_outlier_scores",
    "mine_frequent_routes",
    "route_for",
    "similarity_graph",
    "top_outliers",
]
