"""Frequent-route mining (the paper's navigation motivation).

A *frequent route* is a group of mutually similar trajectories travelled
many times.  We mine them from the tau-similarity graph: each maximal
connected component of sufficiently-dense vertices is a route, ranked by
support (member count); the medoid (member minimizing total distance to
the others) serves as the route's representative for navigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.engine import DITAEngine
from ..trajectory.trajectory import Trajectory
from .clustering import TrajectoryDBSCAN


@dataclass(frozen=True)
class FrequentRoute:
    """One mined route: its members and a representative trajectory."""

    route_id: int
    member_ids: List[int]
    representative: Trajectory

    @property
    def support(self) -> int:
        return len(self.member_ids)


def mine_frequent_routes(
    engine: DITAEngine,
    tau: float,
    min_support: int = 3,
) -> List[FrequentRoute]:
    """Routes travelled at least ``min_support`` times, ranked by support.

    Runs a density clustering at ``tau`` (with ``min_pts = min_support``)
    and keeps clusters meeting the support; the representative is the
    medoid under the engine's distance function.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    result = TrajectoryDBSCAN(eps=tau, min_pts=min_support).fit(engine)
    by_id: Dict[int, Trajectory] = {
        t.traj_id: t for part in engine.partitions.values() for t in part
    }
    dist = engine.adapter.distance()
    routes: List[FrequentRoute] = []
    for route_id, members in enumerate(result.clusters()):
        if len(members) < min_support:
            continue
        trajs = [by_id[m] for m in members]
        medoid = min(
            trajs,
            key=lambda c: (sum(dist.compute(c.points, o.points) for o in trajs), c.traj_id),
        )
        routes.append(
            FrequentRoute(route_id=route_id, member_ids=members, representative=medoid)
        )
    routes.sort(key=lambda r: (-r.support, r.route_id))
    return routes


def route_for(
    routes: List[FrequentRoute], query: Trajectory, engine: DITAEngine, tau: float
) -> Optional[FrequentRoute]:
    """The best frequent route for a trip: the highest-support route whose
    representative is within ``tau`` of the query (None if none qualifies).
    """
    dist = engine.adapter.distance()
    for route in routes:  # already support-ranked
        if dist.compute(route.representative.points, query.points) <= tau:
            return route
    return None
