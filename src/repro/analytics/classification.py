"""Trajectory classification (k-nearest-neighbour majority vote).

The paper cites nearest-neighbour trajectory classification [35] among the
analytics DITA accelerates: label a new trip (commute / delivery / cruising
...) by the labels of its most similar historical trips.  The classifier
wraps :func:`repro.core.knn.knn_search`, so every prediction is one
index-accelerated kNN query.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from ..core.config import DITAConfig
from ..core.engine import DITAEngine
from ..core.knn import knn_search
from ..trajectory.trajectory import Trajectory


class KNNTrajectoryClassifier:
    """Majority-vote kNN classifier over labelled trajectories.

    Ties are broken toward the nearer neighbour's label, matching the
    standard distance-weighted tie rule.
    """

    def __init__(self, k: int = 5, config: Optional[DITAConfig] = None, distance: str = "dtw") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.config = config
        self.distance = distance
        self._engine: Optional[DITAEngine] = None
        self._labels: Dict[int, Hashable] = {}

    # ------------------------------------------------------------------ #

    def fit(
        self, trajectories: Sequence[Trajectory], labels: Sequence[Hashable]
    ) -> "KNNTrajectoryClassifier":
        """Index the labelled training trajectories."""
        trajs = list(trajectories)
        labels = list(labels)
        if len(trajs) != len(labels):
            raise ValueError("trajectories and labels must align")
        if not trajs:
            raise ValueError("cannot fit on an empty training set")
        self._engine = DITAEngine(trajs, self.config, distance=self.distance)
        self._labels = {t.traj_id: lab for t, lab in zip(trajs, labels)}
        return self

    def _check_fitted(self) -> DITAEngine:
        if self._engine is None:
            raise RuntimeError("classifier is not fitted")
        return self._engine

    def predict(self, query: Trajectory) -> Hashable:
        """The majority label among the query's k nearest training trips."""
        engine = self._check_fitted()
        neighbours = knn_search(engine, query, self.k)
        votes = Counter(self._labels[t.traj_id] for t, _ in neighbours)
        top = votes.most_common()
        best_count = top[0][1]
        tied = {label for label, count in top if count == best_count}
        if len(tied) == 1:
            return top[0][0]
        # tie: the nearest neighbour among tied labels decides
        for t, _ in neighbours:
            if self._labels[t.traj_id] in tied:
                return self._labels[t.traj_id]
        return top[0][0]  # unreachable

    def predict_many(self, queries: Iterable[Trajectory]) -> List[Hashable]:
        return [self.predict(q) for q in queries]

    def predict_proba(self, query: Trajectory) -> Dict[Hashable, float]:
        """Vote fractions per label for the query's neighbourhood."""
        engine = self._check_fitted()
        neighbours = knn_search(engine, query, self.k)
        votes = Counter(self._labels[t.traj_id] for t, _ in neighbours)
        total = sum(votes.values())
        return {label: count / total for label, count in votes.items()}

    def score(self, queries: Sequence[Trajectory], labels: Sequence[Hashable]) -> float:
        """Accuracy over a labelled test set."""
        if len(queries) != len(labels):
            raise ValueError("queries and labels must align")
        if not queries:
            raise ValueError("empty test set")
        hits = sum(1 for q, y in zip(queries, labels) if self.predict(q) == y)
        return hits / len(queries)
