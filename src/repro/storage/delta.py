"""Per-partition write buffers for streaming ingestion.

A :class:`DeltaPartition` absorbs appends, extensions and removals
without touching the partition's (possibly memory-mapped) base block:
writes are O(pending) dictionary/set updates, and no index structure is
maintained until the delta is *applied*.  Application produces one new
compact :class:`~repro.storage.columnar.ColumnarDataset` whose rows are
the surviving base rows in base order followed by the delta rows in
arrival order — a canonical layout, so an index bulk-built over the
applied dataset is structurally identical to an index bulk-built over
the same logical trajectories by any other path (the byte-identical
stats contract ``tests/test_streaming.py`` enforces).

Semantics:

* **append** — a brand-new trajectory id becomes a delta row.
* **extend** — the full extended point array becomes a delta row; when
  the id lives in the base block, the base row is shadowed (dropped on
  apply).  Extending an id already pending in the delta just grows its
  pending points.
* **remove** — a pending id is simply dropped; a base id is recorded for
  removal on apply.  Removing an id that *shadowed* a base row keeps the
  shadow (the base row must still disappear).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from .columnar import ColumnarDataset


class DeltaPartition:
    """The write buffer of one partition (insertion-ordered)."""

    def __init__(self, ndim: Optional[int] = None) -> None:
        self._ndim = ndim
        #: pending rows: id -> full (len, ndim) float64 point array,
        #: in arrival order (dict preserves insertion order)
        self.appended: Dict[int, np.ndarray] = {}
        #: pending ids that shadow (replace) a base row
        self.replaced: Set[int] = set()
        #: base ids to tombstone on apply
        self.removed: Set[int] = set()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def _coerce(self, points) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if self._ndim is None:
            self._ndim = int(pts.shape[1])
        elif pts.shape[1] != self._ndim:
            raise ValueError(f"points must have ndim {self._ndim}, got {pts.shape[1]}")
        return pts

    def append(self, traj_id: int, points) -> None:
        """Buffer a new trajectory (the id must not be pending already)."""
        if traj_id in self.appended:
            raise ValueError(f"trajectory {traj_id} already pending")
        self.appended[traj_id] = self._coerce(points)
        self.removed.discard(traj_id)

    def extend_pending(self, traj_id: int, extra_points) -> None:
        """Grow an id already buffered in this delta."""
        self.appended[traj_id] = np.concatenate(
            [self.appended[traj_id], self._coerce(extra_points)], axis=0
        )

    def replace(self, traj_id: int, full_points) -> None:
        """Shadow a base row with the full extended point array."""
        self.appended[traj_id] = self._coerce(full_points)
        self.replaced.add(traj_id)

    def remove(self, traj_id: int) -> None:
        """Drop a pending id, or record a base id for removal on apply."""
        if traj_id in self.appended:
            del self.appended[traj_id]
            if traj_id in self.replaced:
                # the shadowed base row must still disappear
                self.replaced.discard(traj_id)
                self.removed.add(traj_id)
        else:
            self.removed.add(traj_id)

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #

    @property
    def n_pending(self) -> int:
        """Buffered operations: pending rows plus base removals."""
        return len(self.appended) + len(self.removed)

    @property
    def net_rows(self) -> int:
        """Net change in the partition's alive-row count once applied."""
        return len(self.appended) - len(self.replaced) - len(self.removed)

    def __bool__(self) -> bool:
        return bool(self.appended or self.removed)

    def __repr__(self) -> str:
        return (
            f"DeltaPartition(pending={len(self.appended)}, "
            f"replaced={len(self.replaced)}, removed={len(self.removed)})"
        )

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #

    def apply(self, base: Optional[ColumnarDataset]) -> ColumnarDataset:
        """One compact dataset: surviving base rows, then delta rows.

        Base rows shadowed or removed by this delta are dropped; row
        *order* (base order, then arrival order) is the canonical layout
        every consumer of the partition rebuilds from, which is what
        makes the streamed and bulk-built indexes structurally equal.
        """
        gone = self.removed | self.replaced
        if base is not None and base.n_rows:
            alive = base.alive_rows()
            if gone:
                keep_mask = ~np.isin(base.traj_ids[alive], np.fromiter(gone, dtype=np.int64))
                alive = alive[keep_mask]
            base_part = base.subset(alive)
        else:
            base_part = ColumnarDataset.empty(self._ndim or 2)
        if not self.appended:
            return base_part
        ids = np.fromiter(self.appended, dtype=np.int64, count=len(self.appended))
        lens = np.asarray([p.shape[0] for p in self.appended.values()], dtype=np.int64)
        coords = np.concatenate(list(self.appended.values()), axis=0)
        all_ids = np.concatenate([base_part.traj_ids, ids])
        all_lens = np.concatenate([base_part.lengths, lens])
        starts = np.zeros(all_ids.shape[0] + 1, dtype=np.int64)
        np.cumsum(all_lens, out=starts[1:])
        all_coords = (
            np.concatenate([base_part.point_coords, coords], axis=0)
            if base_part.n_rows
            else coords
        )
        return ColumnarDataset(all_ids, starts, all_coords)

    def pending_first_last(self) -> Optional[List[np.ndarray]]:
        """``[firsts, lasts]`` arrays of the pending rows (None if empty)
        — enough for a router or size estimator without applying."""
        if not self.appended:
            return None
        firsts = np.asarray([p[0] for p in self.appended.values()], dtype=np.float64)
        lasts = np.asarray([p[-1] for p in self.appended.values()], dtype=np.float64)
        return [firsts, lasts]
