"""The persisted, partitioned trajectory store.

Directory layout (governed by ``catalog.json``)::

    store/
      catalog.json            # schema version, dtypes, partition metadata
      part-00000/
        ids.npy               # (n,) int64 trajectory ids
        starts.npy            # (n+1,) int64 CSR offsets
        coords.npy            # (total_points, ndim) float64 points
        firsts.npy lasts.npy  # (n, ndim) float64 align-point summaries
        mbr_low.npy mbr_high.npy  # (n, ndim) float64 per-trajectory MBRs
      part-00001/
        ...

Each partition is one contiguous CSR block written with
``np.lib.format`` and read back as a lazy ``np.memmap``
(``np.lib.format.open_memmap`` — the arrays self-describe their dtype, and
nothing is paged in until a consumer touches it).  The catalog carries
every partition's first/last/coverage MBRs, counts, dtypes and CRC32
checksums, so

* **partition pruning on read** compares a query MBR against catalog MBRs
  before any block bytes are touched (:meth:`TrajectoryStore.partition_ids`);
* **cold start** skips parsing, partitioning and summary computation
  entirely — a partition opens as ready-made
  :class:`~repro.storage.columnar.ColumnarDataset` arrays;
* corruption surfaces as typed errors (:class:`CorruptBlockError` /
  :class:`ChecksumError`) instead of downstream garbage, and a schema
  bump raises :class:`SchemaVersionError` instead of misreading bytes.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..geometry.mbr import MBR
from .columnar import ColumnarDataset, partition_rows

PathLike = Union[str, Path]

#: bump when the on-disk layout changes incompatibly
STORAGE_FORMAT_VERSION = 1

CATALOG_NAME = "catalog.json"

#: the block arrays every partition directory must hold, with pinned dtypes
BLOCK_ARRAYS: Dict[str, str] = {
    "ids.npy": "<i8",
    "starts.npy": "<i8",
    "coords.npy": "<f8",
    "firsts.npy": "<f8",
    "lasts.npy": "<f8",
    "mbr_low.npy": "<f8",
    "mbr_high.npy": "<f8",
}


class StorageError(RuntimeError):
    """Base error for the persisted trajectory store."""


class SchemaVersionError(StorageError):
    """The catalog was written by an incompatible format version."""


class CorruptBlockError(StorageError):
    """A partition block is missing, truncated or otherwise unreadable."""


class ChecksumError(CorruptBlockError):
    """A block file's bytes do not match the catalog's CRC32."""


@dataclass
class PartitionMeta:
    """Catalog metadata for one partition (everything pruning needs)."""

    partition_id: int
    directory: str
    n_trajectories: int
    n_points: int
    nbytes: int
    min_len: int
    mbr_first: MBR
    mbr_last: MBR
    mbr: MBR  #: coverage MBR over every point of the partition
    checksums: Dict[str, int]

    def to_json(self) -> dict:
        return {
            "partition_id": self.partition_id,
            "directory": self.directory,
            "n_trajectories": self.n_trajectories,
            "n_points": self.n_points,
            "nbytes": self.nbytes,
            "min_len": self.min_len,
            "mbr_first": [self.mbr_first.low.tolist(), self.mbr_first.high.tolist()],
            "mbr_last": [self.mbr_last.low.tolist(), self.mbr_last.high.tolist()],
            "mbr": [self.mbr.low.tolist(), self.mbr.high.tolist()],
            "checksums": self.checksums,
        }

    @classmethod
    def from_json(cls, d: dict) -> "PartitionMeta":
        return cls(
            partition_id=int(d["partition_id"]),
            directory=str(d["directory"]),
            n_trajectories=int(d["n_trajectories"]),
            n_points=int(d["n_points"]),
            nbytes=int(d["nbytes"]),
            min_len=int(d["min_len"]),
            mbr_first=MBR(d["mbr_first"][0], d["mbr_first"][1]),
            mbr_last=MBR(d["mbr_last"][0], d["mbr_last"][1]),
            mbr=MBR(d["mbr"][0], d["mbr"][1]),
            checksums={str(k): int(v) for k, v in d["checksums"].items()},
        )


def _crc32(path: Path) -> int:
    crc = 0
    with path.open("rb") as f:
        while True:
            chunk = f.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc


def _write_block(part_dir: Path, part: ColumnarDataset) -> Dict[str, int]:
    """Write one partition's arrays with ``np.lib.format``; returns CRC32s."""
    part_dir.mkdir(parents=True, exist_ok=True)
    arrays = {
        "ids.npy": part.traj_ids,
        "starts.npy": part.point_starts,
        "coords.npy": part.point_coords,
        "firsts.npy": part.firsts,
        "lasts.npy": part.lasts,
        "mbr_low.npy": part.mbr_lows,
        "mbr_high.npy": part.mbr_highs,
    }
    checksums: Dict[str, int] = {}
    for name, arr in arrays.items():
        target = part_dir / name
        with target.open("wb") as f:
            pinned = np.ascontiguousarray(arr, dtype=np.dtype(BLOCK_ARRAYS[name]))
            np.lib.format.write_array(f, pinned, allow_pickle=False)
        checksums[name] = _crc32(target)
    return checksums


def write_partition_block(path: PathLike, pid: int, part: ColumnarDataset) -> PartitionMeta:
    """Write one partition's block directory under ``path`` and return its
    catalog metadata.  Idempotent (a retried writer task overwrites its own
    partial output), so fault-tolerant builders can re-run it safely."""
    path = Path(path)
    directory = f"part-{pid:05d}"
    checksums = _write_block(path / directory, part)
    return PartitionMeta(
        partition_id=pid,
        directory=directory,
        n_trajectories=part.n_rows,
        n_points=part.n_points,
        nbytes=part.nbytes(),
        min_len=int(part.lengths.min()),
        mbr_first=MBR(part.firsts.min(axis=0), part.firsts.max(axis=0)),
        mbr_last=MBR(part.lasts.min(axis=0), part.lasts.max(axis=0)),
        mbr=MBR(part.mbr_lows.min(axis=0), part.mbr_highs.max(axis=0)),
        checksums=checksums,
    )


def write_catalog(
    path: PathLike, metas: Sequence[PartitionMeta], ndim: int, n_groups: int
) -> None:
    """Write ``catalog.json`` over already-written partition blocks — the
    last step of any store build; a directory without it is never a store."""
    catalog = {
        "format_version": STORAGE_FORMAT_VERSION,
        "ndim": int(ndim),
        "n_groups": int(n_groups),
        "n_trajectories": sum(m.n_trajectories for m in metas),
        "n_points": sum(m.n_points for m in metas),
        "dtypes": dict(BLOCK_ARRAYS),
        "partitions": [m.to_json() for m in metas],
    }
    (Path(path) / CATALOG_NAME).write_text(json.dumps(catalog, indent=1, sort_keys=True))


def build_store(
    dataset,
    path: PathLike,
    n_groups: int = 8,
) -> "TrajectoryStore":
    """Partition ``dataset`` (first/last-point STR, the Section 4.2.1
    scheme) and persist it under ``path``; returns the opened store.

    ``dataset`` is a :class:`ColumnarDataset` or anything
    :meth:`ColumnarDataset.from_trajectories` accepts.  The partitioning is
    identical to :func:`repro.core.global_index.partition_trajectories`
    with the same ``n_groups``, so an engine built from the store adopts
    the blocks as its partitions unchanged.
    """
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    data = ColumnarDataset.from_trajectories(dataset)
    path = Path(path)
    if (path / CATALOG_NAME).exists():
        raise StorageError(f"store already exists at {path}")
    path.mkdir(parents=True, exist_ok=True)
    metas: List[dict] = []
    groups = [rows for rows in partition_rows(data, n_groups) if rows.shape[0]]
    for pid, rows in enumerate(groups):
        part = data.subset(rows)
        directory = f"part-{pid:05d}"
        checksums = _write_block(path / directory, part)
        meta = PartitionMeta(
            partition_id=pid,
            directory=directory,
            n_trajectories=len(part),
            n_points=part.n_points,
            nbytes=part.nbytes(),
            min_len=int(part.lengths.min()),
            mbr_first=MBR(part.firsts.min(axis=0), part.firsts.max(axis=0)),
            mbr_last=MBR(part.lasts.min(axis=0), part.lasts.max(axis=0)),
            mbr=MBR(part.mbr_lows.min(axis=0), part.mbr_highs.max(axis=0)),
            checksums=checksums,
        )
        metas.append(meta.to_json())
    catalog = {
        "format_version": STORAGE_FORMAT_VERSION,
        "ndim": data.ndim,
        "n_groups": n_groups,
        "n_trajectories": len(data),
        "n_points": data.n_points,
        "dtypes": dict(BLOCK_ARRAYS),
        "partitions": metas,
    }
    (path / CATALOG_NAME).write_text(json.dumps(catalog, indent=1, sort_keys=True))
    return TrajectoryStore.open(path)


def snapshot_partitions(
    parts: Dict[int, ColumnarDataset],
    path: PathLike,
    ndim: int,
    n_groups: int,
) -> "TrajectoryStore":
    """Persist an engine's live partitions *verbatim* under ``path``.

    Unlike :func:`build_store`, nothing is repartitioned, reordered or
    compacted: each dataset is written row-for-row (tombstoned rows
    included) under its given partition id, so row indices in the
    written blocks are exactly the coordinator's row indices.  This is
    the spill path the process backend uses to hand worker processes a
    mappable view of an engine that was built from objects (or mutated
    since its store was written) — result rows resolved by a worker must
    mean the same thing to the coordinator.
    """
    path = Path(path)
    if (path / CATALOG_NAME).exists():
        raise StorageError(f"store already exists at {path}")
    path.mkdir(parents=True, exist_ok=True)
    metas = [write_partition_block(path, pid, parts[pid]) for pid in sorted(parts)]
    write_catalog(path, metas, ndim, n_groups)
    return TrajectoryStore.open(path)


class TrajectoryStore:
    """A read view over a persisted store directory.

    Opening parses only ``catalog.json``; partition blocks load lazily as
    memory-mapped arrays the first time :meth:`partition` is called, and
    pruning decisions (:meth:`partition_ids`) never touch block bytes.
    """

    def __init__(self, path: Path, catalog: dict, mmap: bool) -> None:
        self.path = path
        self.catalog = catalog
        self.mmap = mmap
        self.metas: Dict[int, PartitionMeta] = {
            m["partition_id"]: PartitionMeta.from_json(m) for m in catalog["partitions"]
        }
        self._parts: Dict[int, ColumnarDataset] = {}

    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, path: PathLike, *, mmap: bool = True, verify: bool = False) -> "TrajectoryStore":
        """Open a store; ``verify=True`` additionally checks every block's
        CRC32 up front (reads all bytes — defeats laziness, catches rot)."""
        path = Path(path)
        catalog_path = path / CATALOG_NAME
        if not catalog_path.is_file():
            raise StorageError(f"no {CATALOG_NAME} under {path}")
        try:
            catalog = json.loads(catalog_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptBlockError(f"unreadable catalog at {catalog_path}: {exc}") from exc
        version = catalog.get("format_version")
        if version != STORAGE_FORMAT_VERSION:
            raise SchemaVersionError(
                f"store format version {version!r} is not supported "
                f"(expected {STORAGE_FORMAT_VERSION})"
            )
        dtypes = catalog.get("dtypes", {})
        for name, dt in BLOCK_ARRAYS.items():
            if dtypes.get(name) != dt:
                raise SchemaVersionError(
                    f"catalog pins dtype {dtypes.get(name)!r} for {name}, expected {dt!r}"
                )
        store = cls(path, catalog, mmap)
        if verify:
            store.verify()
        return store

    @property
    def ndim(self) -> int:
        return int(self.catalog["ndim"])

    @property
    def n_trajectories(self) -> int:
        return int(self.catalog["n_trajectories"])

    @property
    def n_points(self) -> int:
        return int(self.catalog["n_points"])

    @property
    def n_groups(self) -> int:
        return int(self.catalog["n_groups"])

    def __len__(self) -> int:
        return len(self.metas)

    # ------------------------------------------------------------------ #
    # pruning and loading
    # ------------------------------------------------------------------ #

    def partition_ids(self, query_mbr: Optional[MBR] = None, expand: float = 0.0) -> List[int]:
        """Partition ids, optionally pruned to those whose coverage MBR
        intersects ``query_mbr`` expanded by ``expand`` — decided entirely
        from the catalog, before any block bytes are touched."""
        pids = sorted(self.metas)
        if query_mbr is None:
            return pids
        probe = query_mbr.expand(expand) if expand > 0 else query_mbr
        return [pid for pid in pids if self.metas[pid].mbr.intersects(probe)]

    def partition(self, pid: int) -> ColumnarDataset:
        """The partition's block as a (cached) lazy memory-mapped dataset."""
        if pid not in self._parts:
            meta = self.metas[pid]
            part_dir = self.path / meta.directory
            arrays = {}
            for name, dt in BLOCK_ARRAYS.items():
                target = part_dir / name
                try:
                    if self.mmap:
                        arr = np.lib.format.open_memmap(target, mode="r")
                    else:
                        arr = np.load(target, allow_pickle=False)
                except (OSError, ValueError) as exc:
                    raise CorruptBlockError(
                        f"partition {pid}: cannot read {target}: {exc}"
                    ) from exc
                if arr.dtype.str != dt:
                    raise CorruptBlockError(
                        f"partition {pid}: {name} has dtype {arr.dtype.str}, expected {dt}"
                    )
                arrays[name] = arr
            n = int(arrays["ids.npy"].shape[0])
            if n != meta.n_trajectories or arrays["starts.npy"].shape != (n + 1,):
                raise CorruptBlockError(
                    f"partition {pid}: block shapes disagree with the catalog"
                )
            if int(arrays["coords.npy"].shape[0]) != meta.n_points:
                raise CorruptBlockError(
                    f"partition {pid}: coords.npy holds {arrays['coords.npy'].shape[0]} "
                    f"points, catalog says {meta.n_points}"
                )
            self._parts[pid] = ColumnarDataset(
                arrays["ids.npy"],
                arrays["starts.npy"],
                arrays["coords.npy"],
                firsts=arrays["firsts.npy"],
                lasts=arrays["lasts.npy"],
                mbr_lows=arrays["mbr_low.npy"],
                mbr_highs=arrays["mbr_high.npy"],
            )
        return self._parts[pid]

    def partitions(self, query_mbr: Optional[MBR] = None) -> Dict[int, ColumnarDataset]:
        """Load (pruned) partitions as ``{pid: dataset}``."""
        return {pid: self.partition(pid) for pid in self.partition_ids(query_mbr)}

    def to_columnar(self) -> ColumnarDataset:
        """Concatenate every partition into one in-memory dataset."""
        parts = [self.partition(pid) for pid in sorted(self.metas)]
        if not parts:
            return ColumnarDataset.empty(self.ndim)
        ids = np.concatenate([p.traj_ids for p in parts])
        lens = np.concatenate([p.lengths for p in parts])
        starts = np.zeros(ids.shape[0] + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        coords = np.concatenate([p.point_coords for p in parts], axis=0)
        return ColumnarDataset(ids, starts, coords)

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #

    def verify(self, pids: Optional[Sequence[int]] = None) -> None:
        """Check block CRC32s against the catalog; raises
        :class:`ChecksumError` on the first mismatch and
        :class:`CorruptBlockError` for missing files."""
        for pid in sorted(self.metas) if pids is None else pids:
            meta = self.metas[pid]
            part_dir = self.path / meta.directory
            for name, expected in meta.checksums.items():
                target = part_dir / name
                if not target.is_file():
                    raise CorruptBlockError(f"partition {pid}: missing block file {target}")
                actual = _crc32(target)
                if actual != expected:
                    raise ChecksumError(
                        f"partition {pid}: {name} CRC32 {actual:#010x} != "
                        f"catalog {expected:#010x}"
                    )

    def describe(self) -> dict:
        """A JSON-friendly summary (the ``repro store inspect`` payload)."""
        return {
            "path": str(self.path),
            "format_version": self.catalog["format_version"],
            "ndim": self.ndim,
            "n_groups": self.n_groups,
            "n_partitions": len(self.metas),
            "n_trajectories": self.n_trajectories,
            "n_points": self.n_points,
            "partitions": [self.metas[pid].to_json() for pid in sorted(self.metas)],
        }

    def __repr__(self) -> str:
        return (
            f"TrajectoryStore(path={str(self.path)!r}, partitions={len(self.metas)}, "
            f"n={self.n_trajectories})"
        )
