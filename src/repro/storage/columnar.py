"""The in-memory columnar trajectory container.

A :class:`ColumnarDataset` holds a whole trajectory collection as one
contiguous CSR layout:

* ``point_coords`` — ``(total_points, ndim)`` float64, every trajectory's
  points concatenated in row order;
* ``point_starts`` — ``(n + 1,)`` int64 offsets; row ``r`` owns
  ``point_coords[point_starts[r]:point_starts[r + 1]]``;
* ``traj_ids`` — ``(n,)`` int64 trajectory ids, one per row.

Per-trajectory summaries (first/last points, MBR corners, lengths) are
computed lazily with vectorized reductions (``np.minimum.reduceat`` /
fancy indexing) and cached — index construction and global partitioning
start from these arrays instead of iterating ``Trajectory`` objects.

``Trajectory`` objects become *views*: :meth:`view` materializes one row
on demand as a zero-copy slice of ``point_coords`` (contiguous slices
pass through ``np.ascontiguousarray`` unchanged).  Every materialization
increments :attr:`materializations`, which the test suite uses to assert
that the batch search/join/kNN paths never touch objects.

The arrays may be ordinary ndarrays or read-only ``np.memmap`` views of a
persisted store block (:mod:`repro.storage.store`) — all consumers are
agnostic.  Removal is handled with a tombstone mask so row indices held
by index structures stay stable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..trajectory.trajectory import Trajectory


def _read_only(arr: np.ndarray) -> np.ndarray:
    """Best-effort write protection (memmaps opened mode 'r' already are)."""
    if arr.flags.writeable:
        arr.setflags(write=False)
    return arr


class ColumnarDataset:
    """A trajectory collection stored as contiguous CSR arrays.

    Duck-compatible with :class:`~repro.trajectory.trajectory.TrajectoryDataset`
    (``len`` / iteration / ``by_id`` / ``ids`` / ``first_points`` / ...), so
    it drops into every consumer of a dataset; iteration materializes row
    views, which only boundary code (analytics, SQL rendering, tests)
    should do.
    """

    def __init__(
        self,
        traj_ids: np.ndarray,
        point_starts: np.ndarray,
        point_coords: np.ndarray,
        *,
        firsts: Optional[np.ndarray] = None,
        lasts: Optional[np.ndarray] = None,
        mbr_lows: Optional[np.ndarray] = None,
        mbr_highs: Optional[np.ndarray] = None,
    ) -> None:
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        point_starts = np.asarray(point_starts, dtype=np.int64)
        point_coords = np.asarray(point_coords, dtype=np.float64)
        n = int(traj_ids.shape[0])
        if point_starts.shape != (n + 1,):
            raise ValueError(
                f"point_starts must have shape ({n + 1},), got {point_starts.shape}"
            )
        if point_coords.ndim != 2:
            raise ValueError("point_coords must be a (total_points, ndim) array")
        if n and int(point_starts[0]) != 0:
            raise ValueError("point_starts must begin at 0")
        if int(point_starts[-1] if n else 0) != point_coords.shape[0]:
            raise ValueError("point_starts must end at len(point_coords)")
        if n and int(np.min(np.diff(point_starts))) < 1:
            raise ValueError("every trajectory needs at least one point")
        if n and np.unique(traj_ids).shape[0] != n:
            raise ValueError("duplicate trajectory ids in dataset")
        self.traj_ids = _read_only(traj_ids)
        self.point_starts = _read_only(point_starts)
        self.point_coords = _read_only(point_coords)
        self._ndim = int(point_coords.shape[1]) if point_coords.ndim == 2 and point_coords.shape[1] else 2
        #: tombstone mask (None means every row is alive)
        self._dead: Optional[np.ndarray] = None
        self._n_dead = 0
        #: bumped on append / removal; derived caches key on it
        self.version = 0
        #: number of Trajectory objects materialized from this dataset
        self.materializations = 0
        self._row_by_id: Optional[dict] = None
        self._firsts = None if firsts is None else _read_only(np.asarray(firsts, dtype=np.float64))
        self._lasts = None if lasts is None else _read_only(np.asarray(lasts, dtype=np.float64))
        self._mbr_lows = None if mbr_lows is None else _read_only(np.asarray(mbr_lows, dtype=np.float64))
        self._mbr_highs = None if mbr_highs is None else _read_only(np.asarray(mbr_highs, dtype=np.float64))
        self._lengths: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, ndim: int = 2) -> "ColumnarDataset":
        return cls(
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty((0, ndim), dtype=np.float64),
        )

    @classmethod
    def from_trajectories(cls, trajectories: Iterable[Trajectory]) -> "ColumnarDataset":
        """Pack ``Trajectory`` objects (or an existing dataset) into CSR form."""
        if isinstance(trajectories, ColumnarDataset):
            return trajectories
        trajs = list(trajectories)
        if not trajs:
            return cls.empty()
        ids = np.asarray([t.traj_id for t in trajs], dtype=np.int64)
        lens = np.asarray([len(t) for t in trajs], dtype=np.int64)
        starts = np.zeros(len(trajs) + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        coords = np.concatenate([t.points for t in trajs], axis=0)
        return cls(ids, starts, coords)

    # ------------------------------------------------------------------ #
    # shape and summaries
    # ------------------------------------------------------------------ #

    @property
    def n_rows(self) -> int:
        """Total rows including tombstoned ones (the index row space)."""
        return int(self.traj_ids.shape[0])

    def __len__(self) -> int:
        return self.n_rows - self._n_dead

    @property
    def ndim(self) -> int:
        return self._ndim

    @property
    def n_points(self) -> int:
        return int(self.point_coords.shape[0])

    @property
    def lengths(self) -> np.ndarray:
        """Per-row point counts, ``(n_rows,)`` int64."""
        if self._lengths is None:
            self._lengths = _read_only(np.diff(self.point_starts))
        return self._lengths

    @property
    def firsts(self) -> np.ndarray:
        """Per-row first points, ``(n_rows, ndim)``."""
        if self._firsts is None:
            self._firsts = _read_only(self.point_coords[self.point_starts[:-1]])
        return self._firsts

    @property
    def lasts(self) -> np.ndarray:
        """Per-row last points, ``(n_rows, ndim)``."""
        if self._lasts is None:
            self._lasts = _read_only(self.point_coords[self.point_starts[1:] - 1])
        return self._lasts

    @property
    def mbr_lows(self) -> np.ndarray:
        """Per-row MBR low corners (vectorized ``np.minimum.reduceat``)."""
        if self._mbr_lows is None:
            if self.n_rows:
                self._mbr_lows = _read_only(
                    np.minimum.reduceat(self.point_coords, self.point_starts[:-1], axis=0)
                )
            else:
                self._mbr_lows = _read_only(np.empty((0, self.ndim), dtype=np.float64))
        return self._mbr_lows

    @property
    def mbr_highs(self) -> np.ndarray:
        """Per-row MBR high corners (vectorized ``np.maximum.reduceat``)."""
        if self._mbr_highs is None:
            if self.n_rows:
                self._mbr_highs = _read_only(
                    np.maximum.reduceat(self.point_coords, self.point_starts[:-1], axis=0)
                )
            else:
                self._mbr_highs = _read_only(np.empty((0, self.ndim), dtype=np.float64))
        return self._mbr_highs

    # TrajectoryDataset-compatible array accessors (alive rows only)
    def first_points(self) -> np.ndarray:
        return self.firsts[self.alive_rows()]

    def last_points(self) -> np.ndarray:
        return self.lasts[self.alive_rows()]

    def nbytes(self) -> int:
        """Raw point bytes of the alive rows (cost-accounting metric)."""
        if self._dead is None:
            return int(self.point_coords.nbytes)
        return int(self.lengths[self.alive_rows()].sum()) * self.ndim * 8

    # ------------------------------------------------------------------ #
    # rows and views
    # ------------------------------------------------------------------ #

    def alive_rows(self) -> np.ndarray:
        """Row indices of the non-tombstoned rows, ascending."""
        if self._dead is None:
            return np.arange(self.n_rows, dtype=np.int64)
        return np.nonzero(~self._dead)[0].astype(np.int64)

    def is_alive(self, row: int) -> bool:
        return self._dead is None or not bool(self._dead[row])

    def points(self, row: int) -> np.ndarray:
        """Zero-copy ``(len, ndim)`` view of one row's points."""
        return self.point_coords[self.point_starts[row] : self.point_starts[row + 1]]

    def view(self, row: int) -> Trajectory:
        """Materialize one row as a :class:`Trajectory` (zero-copy points).

        Counted in :attr:`materializations` — the batch search / join / kNN
        paths must reach their answers without calling this for anything
        but accepted results.
        """
        self.materializations += 1
        return Trajectory(int(self.traj_ids[row]), self.points(row))

    def id_of(self, row: int) -> int:
        return int(self.traj_ids[row])

    def ids_of(self, rows: Sequence[int]) -> List[int]:
        return [int(i) for i in self.traj_ids[np.asarray(rows, dtype=np.int64)]]

    def row_of(self, traj_id: int) -> int:
        """Row index of an alive trajectory id (KeyError when absent)."""
        if self._row_by_id is None:
            self._row_by_id = {
                int(tid): r for r, tid in enumerate(self.traj_ids) if self.is_alive(r)
            }
        return self._row_by_id[traj_id]

    def __contains__(self, traj_id: int) -> bool:
        try:
            self.row_of(traj_id)
            return True
        except KeyError:
            return False

    def by_id(self, traj_id: int) -> Trajectory:
        return self.view(self.row_of(traj_id))

    @property
    def ids(self) -> List[int]:
        return [int(i) for i in self.traj_ids[self.alive_rows()]]

    def __iter__(self) -> Iterator[Trajectory]:
        for row in self.alive_rows():
            yield self.view(int(row))

    def __getitem__(self, idx: int) -> Trajectory:
        return self.view(int(self.alive_rows()[idx]))

    def subset(self, rows: Sequence[int]) -> "ColumnarDataset":
        """A new compact dataset holding the selected rows, in order."""
        rows = np.asarray(rows, dtype=np.int64)
        lens = self.lengths[rows]
        starts = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        total = int(starts[-1])
        src = np.repeat(self.point_starts[rows], lens) + (
            np.arange(total, dtype=np.int64) - np.repeat(starts[:-1], lens)
        )
        return ColumnarDataset(
            np.array(self.traj_ids[rows], dtype=np.int64),
            starts,
            self.point_coords[src],
            firsts=np.array(self.firsts[rows], dtype=np.float64),
            lasts=np.array(self.lasts[rows], dtype=np.float64),
        )

    def sample(self, fraction: float, seed: int = 0) -> "ColumnarDataset":
        """A deterministic random sample of ``fraction`` of the dataset."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        alive = self.alive_rows()
        if fraction == 1.0:
            return self.subset(alive)
        rng = np.random.default_rng(seed)
        n = max(1, int(round(alive.shape[0] * fraction)))
        idx = rng.choice(alive.shape[0], size=n, replace=False)
        return self.subset(alive[np.sort(idx)])

    # ------------------------------------------------------------------ #
    # mutation (rare paths: live inserts and lazy deletion)
    # ------------------------------------------------------------------ #

    def append(self, traj: Trajectory) -> int:
        """Append one trajectory; returns its (stable) row index.

        Existing rows keep their indices, so index structures holding row
        ids stay valid.  The arrays are re-concatenated — appends are the
        rare path; bulk construction goes through :meth:`from_trajectories`
        or the store loaders.
        """
        if traj.traj_id in self:
            raise ValueError(f"trajectory {traj.traj_id} already present")
        row = self.n_rows
        pts = np.asarray(traj.points, dtype=np.float64)
        if self.n_rows == 0 and self.point_coords.shape[1] != pts.shape[1]:
            self.point_coords = np.empty((0, pts.shape[1]), dtype=np.float64)
            self._ndim = int(pts.shape[1])
        self.traj_ids = _read_only(
            np.concatenate([self.traj_ids, np.asarray([traj.traj_id], dtype=np.int64)])
        )
        self.point_starts = _read_only(
            np.concatenate(
                [self.point_starts, np.asarray([self.n_points + len(traj)], dtype=np.int64)]
            )
        )
        self.point_coords = _read_only(np.concatenate([self.point_coords, pts], axis=0))
        if self._dead is not None:
            self._dead = np.concatenate([self._dead, np.zeros(1, dtype=bool)])
        if self._row_by_id is not None:
            self._row_by_id[traj.traj_id] = row
        self._firsts = self._lasts = self._mbr_lows = self._mbr_highs = None
        self._lengths = None
        self.version += 1
        return row

    def mark_removed(self, traj_id: int) -> Optional[int]:
        """Tombstone a trajectory by id; returns its row (None when absent).

        The row's bytes stay in place (lazy deletion), so row indices held
        by index structures remain stable; the row simply stops appearing
        in iteration, ``ids`` and the alive-row summaries.
        """
        try:
            row = self.row_of(traj_id)
        except KeyError:
            return None
        if self._dead is None:
            self._dead = np.zeros(self.n_rows, dtype=bool)
        self._dead[row] = True
        self._n_dead += 1
        if self._row_by_id is not None:
            del self._row_by_id[traj_id]
        self.version += 1
        return row

    def mark_rows_removed(self, rows: "Sequence[int]") -> None:
        """Tombstone rows *by index* — the store-attach path: a worker
        process replaying the coordinator's removals onto its own mapped
        block, where the removed ids are already gone from the catalog's
        point of view but the row numbering must stay aligned."""
        if not len(rows):
            return
        if self._dead is None:
            self._dead = np.zeros(self.n_rows, dtype=bool)
        for row in rows:
            row = int(row)
            if self._dead[row]:
                continue
            self._dead[row] = True
            self._n_dead += 1
            if self._row_by_id is not None:
                self._row_by_id.pop(int(self.traj_ids[row]), None)
        self.version += 1

    def compact(self) -> "ColumnarDataset":
        """A defragmented copy without tombstoned rows."""
        return self.subset(self.alive_rows())

    def __repr__(self) -> str:
        return f"ColumnarDataset(n={len(self)}, points={self.n_points}, d={self.ndim})"


def concat_datasets(parts: Sequence[ColumnarDataset]) -> ColumnarDataset:
    """One compact dataset holding every alive row of ``parts``, in order.

    Row order is each part's alive order, parts in the given sequence
    order — the canonical layout online repartitioning feeds back into
    :func:`partition_rows`.  Trajectory ids must be unique across parts.
    """
    parts = [p if p._dead is None else p.compact() for p in parts]
    parts = [p for p in parts if p.n_rows]
    if not parts:
        return ColumnarDataset.empty()
    ids = np.concatenate([p.traj_ids for p in parts])
    lens = np.concatenate([p.lengths for p in parts])
    starts = np.zeros(ids.shape[0] + 1, dtype=np.int64)
    np.cumsum(lens, out=starts[1:])
    coords = np.concatenate([p.point_coords for p in parts], axis=0)
    return ColumnarDataset(ids, starts, coords)


def partition_rows(dataset: ColumnarDataset, n_groups: int) -> List[np.ndarray]:
    """First/last-point STR partitioning over the summary arrays.

    Returns up to ``n_groups**2`` row-index arrays (alive rows only): STR
    on first points into ``n_groups`` rank-balanced buckets, then each
    bucket STR-grouped by last point — the array-native form of the
    Section 4.2.1 global partitioning, shared by the engine and the
    persisted store builder.
    """
    from ..spatial.str_pack import str_partition

    alive = dataset.alive_rows()
    if alive.shape[0] == 0:
        return []
    firsts = dataset.firsts[alive]
    lasts = dataset.lasts[alive]
    out: List[np.ndarray] = []
    for bucket_idx in str_partition(firsts, n_groups):
        bucket_rows = alive[bucket_idx]
        for sub_idx in str_partition(lasts[bucket_idx], n_groups):
            out.append(bucket_rows[sub_idx])
    return out
