"""Catalog generations: atomic advance for the streaming merge stage.

A generational store is a directory of complete
:class:`~repro.storage.store.TrajectoryStore` snapshots plus one pointer
file::

    root/
      CURRENT                 # {"generation": 3, "tombstoned": [1, 2]}
      gen-00001/              # a full store (catalog.json + blocks)
      gen-00002/
      gen-00003/              # <- what CURRENT points at

Readers resolve ``CURRENT`` once and open the generation it names; the
blocks of superseded generations stay on disk (merely *tombstoned* in
``CURRENT``) until :meth:`GenerationalStore.prune`, so a reader holding
memory maps into an old generation keeps a complete, consistent image —
there is no moment at which any reader can observe a torn store.

Writers build the next generation under a ``.staging`` directory that no
reader ever resolves, then :meth:`commit` renames it into place and swaps
``CURRENT`` with ``os.replace`` (atomic on POSIX).  A crash before commit
leaves only staging garbage (:meth:`abort` or the next :meth:`begin`
clears it); a crash after commit leaves the new generation fully live.
Either way ``CURRENT`` never names a partially-written store.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import List, Optional, Tuple

from .store import CATALOG_NAME, PathLike, StorageError, TrajectoryStore

CURRENT_NAME = "CURRENT"
_STAGING_SUFFIX = ".staging"


def _gen_dirname(generation: int) -> str:
    return f"gen-{generation:05d}"


class GenerationalStore:
    """The root of a generation-versioned trajectory store."""

    def __init__(self, root: Path, state: dict) -> None:
        self.root = root
        self._state = state

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def init(cls, root: PathLike) -> "GenerationalStore":
        """Create an empty generational root (generation 0 = no data)."""
        root = Path(root)
        if (root / CURRENT_NAME).exists():
            raise StorageError(f"generational store already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        self = cls(root, {"generation": 0, "tombstoned": []})
        self._write_current()
        return self

    @classmethod
    def open(cls, root: PathLike) -> "GenerationalStore":
        root = Path(root)
        pointer = root / CURRENT_NAME
        if not pointer.is_file():
            raise StorageError(f"no {CURRENT_NAME} under {root}")
        try:
            state = json.loads(pointer.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable {CURRENT_NAME} at {pointer}: {exc}") from exc
        gen = int(state.get("generation", -1))
        if gen < 0:
            raise StorageError(f"{pointer} holds no valid generation number")
        if gen > 0 and not (root / _gen_dirname(gen) / CATALOG_NAME).is_file():
            raise StorageError(
                f"{CURRENT_NAME} names generation {gen} but "
                f"{_gen_dirname(gen)}/{CATALOG_NAME} is missing"
            )
        return cls(root, state)

    @classmethod
    def open_or_init(cls, root: PathLike) -> "GenerationalStore":
        root = Path(root)
        if (root / CURRENT_NAME).is_file():
            return cls.open(root)
        return cls.init(root)

    def _write_current(self) -> None:
        tmp = self.root / (CURRENT_NAME + ".tmp")
        tmp.write_text(json.dumps(self._state, indent=1, sort_keys=True))
        os.replace(tmp, self.root / CURRENT_NAME)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """The live generation number (0 before the first commit)."""
        return int(self._state["generation"])

    def tombstoned(self) -> List[int]:
        """Superseded generations whose blocks are still on disk."""
        return [int(g) for g in self._state.get("tombstoned", [])]

    def generation_path(self, generation: int) -> Path:
        return self.root / _gen_dirname(generation)

    def current_path(self) -> Path:
        """Directory of the live generation (raises before first commit)."""
        if self.generation == 0:
            raise StorageError(f"generational store at {self.root} holds no data yet")
        return self.generation_path(self.generation)

    def current_store(self, **kwargs) -> TrajectoryStore:
        """Open the live generation as a :class:`TrajectoryStore`."""
        return TrajectoryStore.open(self.current_path(), **kwargs)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def begin(self) -> Tuple[Path, int]:
        """Start building the next generation; returns its staging
        directory (created empty — leftover staging from a crashed writer
        is cleared) and the generation number it will commit as."""
        nxt = self.generation + 1
        staging = self.root / (_gen_dirname(nxt) + _STAGING_SUFFIX)
        if staging.exists():
            shutil.rmtree(staging)
        final = self.generation_path(nxt)
        if final.exists():  # a crashed pre-CURRENT commit; never referenced
            shutil.rmtree(final)
        staging.mkdir(parents=True)
        return staging, nxt

    def commit(self, generation: int) -> Path:
        """Atomically make ``generation`` live: rename its staging
        directory into place, then swap ``CURRENT``.  The previous
        generation is tombstoned, not deleted."""
        if generation != self.generation + 1:
            raise StorageError(
                f"cannot commit generation {generation}: current is {self.generation}"
            )
        staging = self.root / (_gen_dirname(generation) + _STAGING_SUFFIX)
        final = self.generation_path(generation)
        if not (staging / CATALOG_NAME).is_file():
            raise StorageError(f"staging {staging} holds no {CATALOG_NAME}")
        os.replace(staging, final)
        prev = self.generation
        if prev > 0:
            self._state.setdefault("tombstoned", []).append(prev)
        self._state["generation"] = generation
        self._write_current()
        return final

    def abort(self, generation: int) -> None:
        """Discard a staging generation; ``CURRENT`` is untouched."""
        staging = self.root / (_gen_dirname(generation) + _STAGING_SUFFIX)
        shutil.rmtree(staging, ignore_errors=True)

    def prune(self) -> List[int]:
        """Delete tombstoned generations' blocks; returns what was pruned.

        Only safe once no reader still holds maps into them — the caller
        decides when that is (a single-process engine can prune right
        after re-basing onto the new generation)."""
        pruned: List[int] = []
        for gen in self.tombstoned():
            shutil.rmtree(self.generation_path(gen), ignore_errors=True)
            pruned.append(gen)
        self._state["tombstoned"] = []
        self._write_current()
        return pruned

    def describe(self) -> dict:
        """A JSON-friendly summary (the ``repro store merge`` payload)."""
        out = {
            "root": str(self.root),
            "generation": self.generation,
            "tombstoned": self.tombstoned(),
        }
        if self.generation > 0:
            out["current"] = str(self.current_path())
        return out

    def __repr__(self) -> str:
        return f"GenerationalStore(root={str(self.root)!r}, generation={self.generation})"
