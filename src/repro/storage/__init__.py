"""Columnar trajectory storage tier.

* :class:`~repro.storage.columnar.ColumnarDataset` — the in-memory CSR
  container (flat coordinates + offsets + ids, vectorized summaries,
  zero-copy row views).
* :class:`~repro.storage.store.TrajectoryStore` / :func:`build_store` —
  the persisted partitioned form: memory-mapped ``.npy`` blocks under a
  ``catalog.json`` with partition MBRs, counts and checksums, supporting
  catalog-level partition pruning and lazy loading.
"""

from .columnar import ColumnarDataset, concat_datasets, partition_rows
from .delta import DeltaPartition
from .generations import CURRENT_NAME, GenerationalStore
from .store import (
    BLOCK_ARRAYS,
    CATALOG_NAME,
    STORAGE_FORMAT_VERSION,
    ChecksumError,
    CorruptBlockError,
    PartitionMeta,
    SchemaVersionError,
    StorageError,
    TrajectoryStore,
    build_store,
    snapshot_partitions,
    write_catalog,
    write_partition_block,
)

__all__ = [
    "BLOCK_ARRAYS",
    "CATALOG_NAME",
    "CURRENT_NAME",
    "STORAGE_FORMAT_VERSION",
    "ChecksumError",
    "ColumnarDataset",
    "CorruptBlockError",
    "DeltaPartition",
    "GenerationalStore",
    "PartitionMeta",
    "SchemaVersionError",
    "StorageError",
    "TrajectoryStore",
    "build_store",
    "concat_datasets",
    "partition_rows",
    "snapshot_partitions",
    "write_catalog",
    "write_partition_block",
]
