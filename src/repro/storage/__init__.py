"""Columnar trajectory storage tier.

* :class:`~repro.storage.columnar.ColumnarDataset` — the in-memory CSR
  container (flat coordinates + offsets + ids, vectorized summaries,
  zero-copy row views).
* :class:`~repro.storage.store.TrajectoryStore` / :func:`build_store` —
  the persisted partitioned form: memory-mapped ``.npy`` blocks under a
  ``catalog.json`` with partition MBRs, counts and checksums, supporting
  catalog-level partition pruning and lazy loading.
"""

from .columnar import ColumnarDataset, partition_rows
from .store import (
    BLOCK_ARRAYS,
    CATALOG_NAME,
    STORAGE_FORMAT_VERSION,
    ChecksumError,
    CorruptBlockError,
    PartitionMeta,
    SchemaVersionError,
    StorageError,
    TrajectoryStore,
    build_store,
)

__all__ = [
    "BLOCK_ARRAYS",
    "CATALOG_NAME",
    "STORAGE_FORMAT_VERSION",
    "ChecksumError",
    "ColumnarDataset",
    "CorruptBlockError",
    "PartitionMeta",
    "SchemaVersionError",
    "StorageError",
    "TrajectoryStore",
    "build_store",
    "partition_rows",
]
