"""Tests for engine save/load round-tripping."""

import numpy as np
import pytest

from repro import DITAConfig, DITAEngine
from repro.core.adapters import EDRAdapter, ERPAdapter, LCSSAdapter
from repro.core.persistence import load_engine, save_engine
from repro.datagen import beijing_like, sample_queries


@pytest.fixture(scope="module")
def city():
    return beijing_like(70, seed=55)


@pytest.fixture(scope="module")
def cfg():
    return DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)


class TestRoundTrip:
    def test_search_identical(self, city, cfg, tmp_path):
        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        restored = load_engine(tmp_path / "idx")
        for q in sample_queries(city, 4, seed=2, perturb=0.0003):
            assert restored.search_ids(q, 0.003) == engine.search_ids(q, 0.003)

    def test_structure_preserved(self, city, cfg, tmp_path):
        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        restored = load_engine(tmp_path / "idx")
        assert sorted(restored.partitions) == sorted(engine.partitions)
        for pid in engine.partitions:
            assert [t.traj_id for t in restored.partitions[pid]] == [
                t.traj_id for t in engine.partitions[pid]
            ]
            assert restored.tries[pid].node_count() == engine.tries[pid].node_count()
            assert restored.tries[pid].to_dict() == engine.tries[pid].to_dict()

    def test_points_bitwise_equal(self, city, cfg, tmp_path):
        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        restored = load_engine(tmp_path / "idx")
        by_id = {t.traj_id: t for p in restored.partitions.values() for t in p}
        for t in city:
            assert np.array_equal(by_id[t.traj_id].points, t.points)

    def test_join_identical(self, city, cfg, tmp_path):
        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        restored = load_engine(tmp_path / "idx")
        got = sorted((a, b) for a, b, _ in restored.join(restored, 0.002))
        want = sorted((a, b) for a, b, _ in engine.join(engine, 0.002))
        assert got == want

    def test_config_preserved(self, city, cfg, tmp_path):
        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        restored = load_engine(tmp_path / "idx")
        assert restored.config == cfg

    def test_parameterized_adapters_roundtrip(self, city, cfg, tmp_path):
        for adapter in (EDRAdapter(epsilon=0.0007), LCSSAdapter(epsilon=0.0004, delta=5), ERPAdapter(gap=(0.1, 0.1))):
            engine = DITAEngine(city, cfg, distance=adapter)
            save_engine(engine, tmp_path / adapter.distance_name)
            restored = load_engine(tmp_path / adapter.distance_name)
            assert restored.adapter.distance_name == adapter.distance_name
            if hasattr(adapter, "epsilon"):
                assert restored.adapter.epsilon == adapter.epsilon
            if hasattr(adapter, "delta"):
                assert restored.adapter.delta == adapter.delta

    def test_version_check(self, city, cfg, tmp_path):
        import json

        engine = DITAEngine(city, cfg)
        save_engine(engine, tmp_path / "idx")
        meta_path = (tmp_path / "idx").with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_engine(tmp_path / "idx")
