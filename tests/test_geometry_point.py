"""Unit tests for repro.geometry.point."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import (
    angle_at,
    as_point,
    centroid,
    euclidean,
    pairwise_distances,
    point_to_points_min,
    squared_euclidean,
)

coords = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
points_2d = st.tuples(coords, coords)


class TestAsPoint:
    def test_list_coerces(self):
        p = as_point([1, 2])
        assert p.dtype == np.float64
        assert p.shape == (2,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            as_point([])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_point([[1, 2], [3, 4]])


class TestEuclidean:
    def test_known_value(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean((1.5, -2.5), (1.5, -2.5)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            euclidean((1, 2), (1, 2, 3))

    def test_3d(self):
        assert euclidean((0, 0, 0), (1, 2, 2)) == pytest.approx(3.0)

    @given(points_2d, points_2d)
    def test_symmetry(self, a, b):
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(points_2d, points_2d, points_2d)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    @given(points_2d, points_2d)
    def test_squared_consistent(self, a, b):
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2, rel=1e-9, abs=1e-9)


class TestPairwiseDistances:
    def test_matches_paper_table1(self):
        """The distance matrix of the paper's Table 1 (spot checks)."""
        t1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
        t3 = np.array([(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)], float)
        w = pairwise_distances(t1, t3)
        assert w[0, 0] == pytest.approx(0.0)
        assert w[0, 1] == pytest.approx(3.0)
        assert w[2, 1] == pytest.approx(1.41, abs=0.01)
        assert w[5, 5] == pytest.approx(1.0)
        assert w[4, 3] == pytest.approx(0.0)

    def test_shape(self):
        xs = np.zeros((3, 2))
        ys = np.ones((5, 2))
        assert pairwise_distances(xs, ys).shape == (3, 5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros(2), np.zeros((2, 2)))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((2, 2)), np.zeros((2, 3)))


class TestPointToPointsMin:
    def test_basic(self):
        ys = np.array([(0, 0), (10, 10)], float)
        assert point_to_points_min((1, 0), ys) == pytest.approx(1.0)

    def test_empty_is_inf(self):
        assert point_to_points_min((0, 0), np.empty((0, 2))) == math.inf


class TestCentroid:
    def test_mean(self):
        c = centroid([(0, 0), (2, 2)])
        assert c.tolist() == [1.0, 1.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestAngleAt:
    def test_right_angle(self):
        assert angle_at((1, 0), (0, 0), (0, 1)) == pytest.approx(math.pi / 2)

    def test_straight_line(self):
        assert angle_at((0, 0), (1, 0), (2, 0)) == pytest.approx(math.pi)

    def test_reversal(self):
        assert angle_at((0, 0), (1, 0), (0, 0)) == pytest.approx(0.0)

    def test_degenerate_is_straight(self):
        assert angle_at((1, 1), (1, 1), (2, 2)) == pytest.approx(math.pi)

    @given(points_2d, points_2d, points_2d)
    def test_range(self, a, b, c):
        angle = angle_at(a, b, c)
        assert 0.0 <= angle <= math.pi + 1e-12
