"""Tests for the classic DTW lower bounds and spatio-temporal helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import dtw, dtw_window, lb_keogh, lb_kim, keogh_envelope
from repro.trajectory import (
    Trajectory,
    TrajectoryDataset,
    attach_time,
    attach_uniform_time,
    strip_time,
    temporal_dataset,
)

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def equal_pairs(draw, max_len=10):
    n = draw(st.integers(1, max_len))
    t = np.asarray([[draw(coords), draw(coords)] for _ in range(n)])
    q = np.asarray([[draw(coords), draw(coords)] for _ in range(n)])
    return t, q


class TestLBKim:
    @settings(max_examples=80)
    @given(equal_pairs())
    def test_lower_bounds_exact_dtw(self, pair):
        t, q = pair
        assert lb_kim(t, q) <= dtw(t, q) + 1e-9

    def test_unequal_lengths_ok(self):
        t = np.array([(0, 0), (1, 1), (2, 2)], float)
        q = np.array([(0, 0), (2, 2)], float)
        assert lb_kim(t, q) <= dtw(t, q) + 1e-9

    def test_single_points(self):
        t = np.array([(0, 0)], float)
        q = np.array([(3, 4)], float)
        assert lb_kim(t, q) == pytest.approx(5.0)


class TestLBKeogh:
    @settings(max_examples=80)
    @given(equal_pairs(), st.integers(0, 12))
    def test_lower_bounds_banded_dtw(self, pair, w):
        t, q = pair
        assert lb_keogh(t, q, w) <= dtw_window(t, q, w) + 1e-9

    @settings(max_examples=60)
    @given(equal_pairs())
    def test_full_window_bounds_exact(self, pair):
        t, q = pair
        assert lb_keogh(t, q, q.shape[0] - 1) <= dtw(t, q) + 1e-9

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            lb_keogh(np.zeros((3, 2)), np.zeros((2, 2)), 1)

    def test_envelope_contains_query(self):
        q = np.random.default_rng(1).uniform(0, 5, size=(8, 2))
        lower, upper = keogh_envelope(q, 2)
        assert np.all(lower <= q) and np.all(q <= upper)

    def test_envelope_window_validation(self):
        with pytest.raises(ValueError):
            keogh_envelope(np.zeros((3, 2)), -1)

    def test_zero_on_self(self):
        t = np.random.default_rng(2).uniform(0, 5, size=(6, 2))
        assert lb_keogh(t, t, 0) == pytest.approx(0.0)


class TestTemporal:
    def test_attach_and_strip_roundtrip(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        st_t = attach_time(t, [0, 10], weight=0.5)
        assert st_t.ndim == 3
        assert st_t.points[1, 2] == pytest.approx(5.0)
        back = strip_time(st_t)
        assert np.array_equal(back.points, t.points)

    def test_validation(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            attach_time(t, [0], weight=1)
        with pytest.raises(ValueError):
            attach_time(t, [10, 0], weight=1)  # decreasing
        with pytest.raises(ValueError):
            attach_time(t, [0, 10], weight=-1)
        with pytest.raises(ValueError):
            attach_uniform_time(t, 0, 0, 1)

    def test_uniform_time(self):
        t = Trajectory(1, [(0, 0), (1, 1), (2, 2)])
        st_t = attach_uniform_time(t, start=100, interval=10, weight=0.1)
        assert st_t.points[:, 2].tolist() == [10.0, 11.0, 12.0]

    def test_time_separates_same_route_trips(self):
        """Two trips on one route, hours apart, stop matching once time is
        attached with a meaningful weight."""
        from repro.distances import get_distance

        d = get_distance("dtw")
        route = np.asarray([(0.01 * i, 0.0) for i in range(10)])
        a = Trajectory(1, route)
        b = Trajectory(2, route + 1e-6)
        assert d.compute(a.points, b.points) < 0.001
        # same spatial route, 2 h apart, weight: 1 h == 0.01 deg
        at = attach_uniform_time(a, start=0.0, interval=5, weight=0.01 / 3600)
        bt = attach_uniform_time(b, start=7200.0, interval=5, weight=0.01 / 3600)
        assert d.compute(at.points, bt.points) > 0.01

    def test_temporal_dataset_through_engine(self):
        """The full pipeline runs on space-time trajectories."""
        from repro import DITAConfig, DITAEngine
        from repro.datagen import citywide_dataset

        base = citywide_dataset(30, seed=61, duplication=3)
        starts = [float(3600 * (i % 3)) for i in range(len(base))]
        lifted = temporal_dataset(base, starts, interval=10, weight=0.0001 / 60)
        engine = DITAEngine(lifted, DITAConfig(num_global_partitions=2, num_pivots=2))
        q = lifted[0]
        got = engine.search_ids(q, 0.003)
        from repro.distances import get_distance

        d = get_distance("dtw")
        want = sorted(t.traj_id for t in lifted if d.compute(t.points, q.points) <= 0.003)
        assert got == want

    def test_temporal_dataset_validation(self):
        base = TrajectoryDataset([Trajectory(1, [(0, 0)])])
        with pytest.raises(ValueError):
            temporal_dataset(base, [0.0, 1.0], 10, 0.1)
