"""Tests for the trajectory data model, IO, stats and simplification."""

import math

import numpy as np
import pytest

from repro.trajectory import (
    Trajectory,
    TrajectoryDataset,
    dataset_stats,
    douglas_peucker,
    load_csv,
    load_jsonl,
    save_csv,
    save_jsonl,
    simplify,
    stats_header,
)


class TestTrajectory:
    def test_basic_properties(self):
        t = Trajectory(7, [(0, 0), (1, 1), (2, 0)])
        assert len(t) == 3
        assert t.ndim == 2
        assert t.traj_id == 7
        assert t.first.tolist() == [0, 0]
        assert t.last.tolist() == [2, 0]

    def test_single_point_promoted(self):
        t = Trajectory(1, (3, 4))
        assert len(t) == 1

    def test_immutable_points(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            t.points[0, 0] = 99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(1, np.empty((0, 2)))

    def test_mbr_cached_and_correct(self):
        t = Trajectory(1, [(0, 5), (3, 1)])
        assert t.mbr.low.tolist() == [0, 1]
        assert t.mbr is t.mbr  # cached

    def test_prefix(self):
        t = Trajectory(1, [(0, 0), (1, 1), (2, 2)])
        p = t.prefix(2)
        assert len(p) == 2
        assert p.last.tolist() == [1, 1]

    def test_prefix_out_of_range(self):
        t = Trajectory(1, [(0, 0)])
        with pytest.raises(IndexError):
            t.prefix(2)
        with pytest.raises(IndexError):
            t.prefix(0)

    def test_reversed(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        assert t.reversed().first.tolist() == [1, 1]

    def test_length_travelled(self):
        t = Trajectory(1, [(0, 0), (3, 4), (3, 4)])
        assert t.length_travelled() == pytest.approx(5.0)
        assert Trajectory(2, [(0, 0)]).length_travelled() == 0.0

    def test_equality_hash(self):
        a = Trajectory(1, [(0, 0), (1, 1)])
        b = Trajectory(1, [(0, 0), (1, 1)])
        c = Trajectory(2, [(0, 0), (1, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_nbytes(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        assert t.nbytes() == 2 * 2 * 8


class TestTrajectoryDataset:
    def _ds(self):
        return TrajectoryDataset(
            [Trajectory(i, [(i, i), (i + 1, i + 1)]) for i in range(10)]
        )

    def test_len_iter_getitem(self):
        ds = self._ds()
        assert len(ds) == 10
        assert ds[3].traj_id == 3
        assert [t.traj_id for t in ds] == list(range(10))

    def test_by_id_and_contains(self):
        ds = self._ds()
        assert ds.by_id(5).traj_id == 5
        assert 5 in ds
        assert 99 not in ds

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([Trajectory(1, [(0, 0)]), Trajectory(1, [(1, 1)])])

    def test_sample_deterministic(self):
        ds = self._ds()
        a = ds.sample(0.5, seed=1)
        b = ds.sample(0.5, seed=1)
        assert a.ids == b.ids
        assert len(a) == 5

    def test_sample_full(self):
        ds = self._ds()
        assert ds.sample(1.0).ids == ds.ids

    def test_sample_invalid(self):
        with pytest.raises(ValueError):
            self._ds().sample(0.0)

    def test_first_last_points(self):
        ds = self._ds()
        assert ds.first_points().shape == (10, 2)
        assert ds.last_points()[0].tolist() == [1, 1]


class TestIO:
    def test_csv_roundtrip(self, tmp_path):
        ds = TrajectoryDataset(
            [Trajectory(3, [(0.125, -1.5), (2.25, 3.75)]), Trajectory(9, [(5, 5)])]
        )
        path = tmp_path / "out.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.ids == [3, 9]
        assert np.array_equal(back.by_id(3).points, ds.by_id(3).points)

    def test_jsonl_roundtrip(self, tmp_path):
        ds = TrajectoryDataset([Trajectory(1, [(0.1, 0.2), (0.3, 0.4)])])
        path = tmp_path / "out.jsonl"
        save_jsonl(ds, path)
        back = load_jsonl(path)
        assert np.allclose(back.by_id(1).points, ds.by_id(1).points)

    def test_load_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(load_csv(path)) == 0


class TestStats:
    def test_dataset_stats(self):
        ds = TrajectoryDataset(
            [Trajectory(1, [(0, 0)] * 4), Trajectory(2, [(0, 0)] * 8)]
        )
        s = dataset_stats(ds)
        assert s.cardinality == 2
        assert s.avg_len == 6.0
        assert s.min_len == 4
        assert s.max_len == 8
        assert s.total_points == 12

    def test_empty_stats(self):
        s = dataset_stats(TrajectoryDataset([]))
        assert s.cardinality == 0

    def test_row_formatting(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0)])])
        row = dataset_stats(ds).row("tiny")
        assert "tiny" in row
        assert stats_header().startswith("Dataset")


class TestSimplify:
    def test_straight_line_collapses(self):
        pts = np.array([(0, 0), (1, 0), (2, 0), (3, 0)], float)
        out = douglas_peucker(pts, 0.01)
        assert out.shape[0] == 2

    def test_keeps_corner(self):
        pts = np.array([(0, 0), (1, 0), (1, 5), (2, 5)], float)
        out = douglas_peucker(pts, 0.1)
        assert out.shape[0] == 4

    def test_error_bound(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, size=(50, 2))
        eps = 0.5
        out = douglas_peucker(pts, eps)
        # every original point is within eps of the simplified polyline
        for p in pts:
            best = math.inf
            for a, b in zip(out[:-1], out[1:]):
                ab = b - a
                denom = float(np.dot(ab, ab))
                t = 0.0 if denom == 0 else max(0.0, min(1.0, float(np.dot(p - a, ab)) / denom))
                best = min(best, float(np.linalg.norm(p - (a + t * ab))))
            assert best <= eps + 1e-9

    def test_simplify_keeps_id(self):
        t = Trajectory(42, [(0, 0), (1, 0.001), (2, 0)])
        s = simplify(t, 0.1)
        assert s.traj_id == 42
        assert len(s) == 2

    def test_short_trajectory_unchanged(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        assert len(simplify(t, 1.0)) == 2
