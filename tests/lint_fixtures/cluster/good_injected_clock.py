"""Clean counterpart to ``bad_wall_clock``: time flows through the hook."""


def run_task(fn, measure, work=1.0):
    result, elapsed = measure(fn, work)
    return result, elapsed


def timed_build(fn, clock):
    start = clock()
    result = fn()
    return result, clock() - start
