"""File-level suppression fixture."""
# ditalint: disable-file=DIT001

import time


def timed(fn):
    start = time.time()
    result = fn()
    return result, time.time() - start
