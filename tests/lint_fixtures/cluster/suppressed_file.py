"""File-level suppression fixture."""
# ditalint: disable-file=DIT001 -- fixture: timing harness measures the host on purpose

import time


def timed(fn):
    start = time.time()
    result = fn()
    return result, time.time() - start
