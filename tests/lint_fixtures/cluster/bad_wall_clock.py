"""DIT001 fixture: wall-clock reads inside simulated-cluster code."""

import time
from datetime import datetime
from time import perf_counter as pc


def run_task(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def stamp():
    return datetime.now()


def aliased():
    return pc()
