"""Suppression fixture: every violation here is explicitly silenced."""

import random
import time


def timed(fn):
    start = time.perf_counter()  # ditalint: disable=DIT001 -- fixture: sanctioned read
    result = fn()
    # ditalint: disable=DIT001 -- comment-only line shields the next line
    elapsed = time.perf_counter() - start
    return result, elapsed


def noise():
    return random.random()  # ditalint: disable=DIT002 -- fixture: demo


def leftovers():
    return time.monotonic()
