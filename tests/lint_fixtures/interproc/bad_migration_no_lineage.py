"""DIT010 positive for migrations: a repartitioner ships partition bytes
to new workers but no path registers a rebuild closure — the shipped
partition is stranded the moment its destination worker crashes."""


class ForgetfulRepartitioner:
    def __init__(self, cluster, partitions):
        self.cluster = cluster
        self.partitions = partitions

    def repartition(self, plan):
        moved = 0
        for (src, dst), nbytes in sorted(plan.items()):
            self.cluster.ship(src, dst, nbytes)
            moved += nbytes
        return moved
