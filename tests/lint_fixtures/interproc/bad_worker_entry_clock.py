"""DIT007 positive for process-pool worker entry points: the body is
never passed to ``run_local``/``run_on_worker`` — it is registered via
``register_task_kind()`` at module scope, the way the parallel backend
wires its workers — and it reaches ``time.perf_counter()`` only through
two helper levels.  Worker entry points execute on real processes but
must stay bit-reproducible, so they obey the same purity rules as
inline task closures."""

import time

_TASK_KINDS = {}


def register_task_kind(kind, fn):
    _TASK_KINDS[kind] = fn


def _budget_two():
    return time.perf_counter()


def _budget_one():
    return _budget_two()


def _echo_body(spec, resolver):
    return ("echo", spec.payload, _budget_one())


register_task_kind("demo.echo", _echo_body)
