"""DIT008 positive: a charge site from which no tracer/metrics sink is
reachable — invisible to the span-sum == busy_time identity."""


def _cost(n):
    return 0.001 * n


def charge_quietly(worker, n):
    worker.charge_compute(_cost(n))


def schedule_quietly(cluster, wid, n):
    cluster.charge_query(wid, _cost(n))
