"""DIT010 negative for migrations: ship() call sites whose lineage is
registered on the submitting path itself, and via a direct caller."""


class AdaptiveEngine:
    def __init__(self, cluster, partitions):
        self.cluster = cluster
        self.partitions = partitions

    def repartition(self, destinations, moves):
        # destinations get their rebuild closures before any byte moves
        for dst, part in sorted(destinations.items()):
            self.cluster.register_rebuild(dst, lambda p=part: p)
        for src, dst, nbytes in moves:
            self.cluster.ship(src, dst, nbytes)
        return len(moves)


def _migrate_all(cluster, moves):
    for src, dst, nbytes in moves:
        cluster.ship(src, dst, nbytes)


def rebalance(cluster, moves):
    for _, dst, _ in moves:
        cluster.register_rebuild(dst, lambda p=dst: p)
    _migrate_all(cluster, moves)
