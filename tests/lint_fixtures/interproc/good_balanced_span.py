"""DIT009 negative: spans end on every path — try/finally or the
tracer.job() context manager."""


def try_finally(tracer, fast):
    span = tracer.begin("job", "job")
    try:
        if fast:
            return None
        return 42
    finally:
        tracer.end(span)


def context_manager(tracer):
    with tracer.job("search", k=5):
        return 42
