"""DIT010 positive: an engine entry point submits partition tasks but no
path registers a rebuild closure."""


class ForgetfulEngine:
    def __init__(self, cluster, partitions):
        self.cluster = cluster
        self.partitions = partitions

    def search(self, query):
        out = []
        for pid in sorted(self.partitions):
            self.cluster.run_local(pid, lambda ms=None: query, work=1, tag="search")
        return out
