"""DIT007 positive: the task body reaches time.time() only through TWO
levels of helper calls — per-file DIT001 provably misses this (the file
is outside DIT001's scopes, and even in scope the sink is not in the
body).  Lineage and tracing are handled so only DIT007 fires."""

import time


def _helper_two():
    return time.time()


def _helper_one():
    return _helper_two()


def _rebuild():
    return []


def submit(cluster):
    def body(ms=None):
        return _helper_one()

    cluster.register_rebuild(0, _rebuild)
    cluster.run_local(0, body, work=1, tag="demo")


def charge(cluster, tracer, amount):
    cluster.charge_compute(0, amount * _helper_one())
    tracer.record("demo", "compute", 0, 0.0, amount)
