"""DIT009 positive: begin without a guaranteed end — a bare begin with
no end at all, and a begin whose end is skipped by an early return."""


def no_end(tracer):
    span = tracer.begin("job", "job")
    return span


def early_return(tracer, fast):
    span = tracer.begin("job", "job")
    if fast:
        return None  # leaks the span
    result = 42
    tracer.end(span)
    return result
