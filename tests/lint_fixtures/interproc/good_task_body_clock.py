"""DIT007 negative: task bodies stay pure — costs come from the work
model, not the host clock."""


def _cost_model(n):
    return 0.001 * n


def _rebuild():
    return []


def submit(cluster, n):
    def body(ms=None):
        return _cost_model(n)

    cluster.register_rebuild(0, _rebuild)
    cluster.run_local(0, body, work=n, tag="demo")


def charge(cluster, tracer, n):
    cluster.charge_compute(0, _cost_model(n))
    tracer.record("demo", "compute", 0, 0.0, _cost_model(n))
