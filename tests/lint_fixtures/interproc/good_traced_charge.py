"""DIT008 negative: every charge site reaches a tracer span or metrics
record (directly or through a helper)."""


def _trace(tracer, seconds):
    tracer.record("task", "compute", 0, 0.0, seconds)


def charge_direct(worker, tracer, seconds):
    worker.charge_compute(seconds)
    tracer.record("task", "compute", 0, 0.0, seconds)


def charge_via_helper(worker, tracer, seconds):
    worker.charge_compute(seconds)
    _trace(tracer, seconds)


def charge_metrics(worker, metrics, seconds):
    worker.charge_network(seconds)
    metrics.observe("net.seconds", seconds)


def schedule_counted(cluster, metrics, wid, seconds):
    cluster.charge_query(wid, seconds)
    metrics.counter("serve.scheduler.charged_s", seconds)
