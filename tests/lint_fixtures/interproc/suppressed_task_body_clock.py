"""DIT007 suppression: the submission site opts out with a reason."""

import time


def _measure():
    return time.time()


def _rebuild():
    return []


def submit(cluster):
    def body(ms=None):
        return _measure()

    cluster.register_rebuild(0, _rebuild)
    # ditalint: disable=DIT007 -- fixture: measured-mode benchmark prices real time on purpose
    cluster.run_local(0, body, work=1, tag="demo")
