"""DIT007 negative for process-pool worker entry points: the registered
body computes from its payload and resolver only — no host clock, no OS
entropy — so it is safe to run on a real worker process."""

_TASK_KINDS = {}


def register_task_kind(kind, fn):
    _TASK_KINDS[kind] = fn


def _cost_model(n):
    return 0.001 * n


def _echo_body(spec, resolver):
    return ("echo", spec.payload, _cost_model(len(spec.payload)))


register_task_kind("demo.echo", _echo_body)
