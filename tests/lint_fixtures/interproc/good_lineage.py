"""DIT010 negative: lineage registered in the constructor, an exempted
baseline class, and a submitting function whose caller registers."""


class RecoverableEngine:
    def __init__(self, cluster, partitions):
        self.cluster = cluster
        self.partitions = partitions
        for pid in sorted(partitions):
            cluster.register_rebuild(pid, lambda p=pid: p)

    def search(self, query):
        for pid in sorted(self.partitions):
            self.cluster.run_local(pid, lambda ms=None: query, work=1, tag="s")
        return []


class ThrowawayEngine:
    lineage_exempt = "fixture: driver-side baseline, nothing to rebuild"

    def __init__(self, cluster):
        self.cluster = cluster

    def search(self, query):
        self.cluster.run_local(0, lambda ms=None: query, work=1, tag="s")
        return []


def _submit_all(cluster, bodies):
    for i, body in enumerate(bodies):
        cluster.run_local(i, body, work=1, tag="batch")


def driver(cluster, bodies):
    for i, _ in enumerate(bodies):
        cluster.register_rebuild(i, lambda p=i: p)
    _submit_all(cluster, bodies)
