"""Clean counterpart to ``bad_float_eq``: tolerance helpers and sentinels."""

import math

from repro.core.numerics import feq, near_zero


def is_zero(x):
    return near_zero(x)


def is_unreachable(d):
    return math.isinf(d)


def same(a, b):
    return feq(a, b)


def within(d, tau):
    return d <= tau
