"""DIT003 fixture: exact float equality in distance code."""

import math


def is_zero(x):
    return x == 0.0


def is_unreachable(d):
    return d == math.inf


def mismatch(a):
    return a != 1.5
