"""DIT005 fixture: distance classes that dodge the lower-bound contract."""

from repro.distances.base import TrajectoryDistance


class BoundlessDistance(TrajectoryDistance):
    """Subclasses the interface but registers no bound and no opt-out."""

    def compute(self, t, q):
        return 0.0


class RogueMetric:
    """Walks like a distance (defines compute) without the interface."""

    def compute(self, t, q):
        return 0.0
