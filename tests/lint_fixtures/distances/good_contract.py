"""Clean counterpart to ``bad_contract``: bound registered or opted out."""

from repro.distances.base import TrajectoryDistance


class BoundedDistance(TrajectoryDistance):
    def compute(self, t, q):
        return 0.0

    def lower_bound(self, t, q):
        return 0.0


class ExemptDistance(TrajectoryDistance):
    lower_bound_exempt = "fixture: no nontrivial bound exists"

    def compute(self, t, q):
        return 0.0
