"""DIT011 positive (storage scope): raw-byte readers without a pinned
dtype — np.memmap defaults to uint8, np.fromfile to float64."""

import numpy as np


def open_block(path):
    return np.memmap(path, mode="r")


def read_coords(path):
    with open(path, "rb") as f:
        return np.fromfile(f)
