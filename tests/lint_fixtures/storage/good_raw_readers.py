"""DIT011 negative (storage scope): raw readers with the dtype pinned
from the schema, and the self-describing .npy path."""

import numpy as np

SCHEMA_DTYPE = np.float64


def open_block(path):
    return np.memmap(path, dtype=SCHEMA_DTYPE, mode="r")


def read_coords(path):
    with open(path, "rb") as f:
        return np.fromfile(f, dtype=np.int64)


def open_npy(path):
    # .npy header self-describes the dtype; no pin needed
    return np.lib.format.open_memmap(path, mode="r")
