"""Clean counterpart to ``bad_set_order``: sorted before anything ordered."""


def assign_partitions(ids):
    pending = set(ids)
    out = []
    for traj_id in sorted(pending):
        out.append(traj_id)
    return out


def cheapest(costs):
    return min(sorted(costs), key=lambda k: (costs[k], k))


def has_any(ids):
    pending = set(ids)
    return any(i > 0 for i in pending)


def as_labels(ids):
    pending = set(ids)
    return {f"t{i}" for i in pending}
