"""DIT012 negative: every suppression carries a reason; an explicit
DIT012 disable (with its own reason) can silence a deliberate bare one."""

VALUE = 1  # ditalint: disable=DIT004 -- fixture: constant, no ordering involved

# ditalint: disable=DIT012 -- fixture: the next line's bare disable is itself the test subject
# ditalint: disable=DIT006
