"""DIT012 positive: suppressions without a '-- reason' trailer, and a
bare disable=all that must NOT silence DIT012 itself."""

VALUE = 1  # ditalint: disable=DIT004


def blanket():
    # ditalint: disable=all
    return VALUE
