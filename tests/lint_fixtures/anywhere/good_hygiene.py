"""Clean counterpart to ``bad_hygiene``: None defaults, honest names.

Class-namespace members may mirror builtins (``Token.type``,
Spark-style ``frame.filter``) — they never shadow at call sites.
"""


def accumulate(x, acc=None):
    if acc is None:
        acc = []
    acc.append(x)
    return acc


def apply(predicate, values):
    return [v for v in values if predicate(v)]


class Frame:
    kind: str = "frame"

    def filter(self, predicate):
        return [self]

    type = kind
