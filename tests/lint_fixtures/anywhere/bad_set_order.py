"""DIT004 fixture: ordered decisions fed by set/dict iteration order."""


def assign_partitions(ids):
    pending = set(ids)
    out = []
    for traj_id in pending:
        out.append(traj_id)
    return out


def first_worker(workers):
    return min({w for w in workers})


def cheapest(costs):
    return min(costs.keys(), key=lambda k: costs[k])


def collect(pending):
    pending = {1, 2, 3}
    return [x * 2 for x in pending]
