"""DIT006 fixture: mutable defaults and shadowed builtins."""


def accumulate(x, acc=[]):
    acc.append(x)
    return acc


def tabulate(rows, index={}):
    index.update(rows)
    return index


def apply(filter, values):
    return [v for v in values if filter(v)]


def rename():
    type = "trajectory"
    return type
