"""DIT011 positive: implicit dtype, float32 downcast, narrow CSR index."""

import numpy as np


def implicit_dtype(points):
    return np.asarray(points)


def downcast(matrix):
    small = np.asarray(matrix, dtype=np.float32)
    return small.astype("float16")


def narrow_index(n):
    starts = np.zeros(n, dtype=np.int32)
    indptr = np.arange(n, dtype=np.int64).astype(np.int16)
    return starts, indptr
