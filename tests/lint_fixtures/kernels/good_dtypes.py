"""DIT011 negative: pinned float64 data, int64 indices; a narrow dtype
is fine for a non-index tag array."""

import numpy as np


def pinned(points, n):
    data = np.asarray(points, dtype=np.float64)
    starts = np.zeros(n, dtype=np.int64)
    kind = np.full(n, 2, dtype=np.int8)  # tag array, not an index
    return data, starts, kind
