"""Clean counterpart to ``bad_rng``: one seeded generator, threaded through."""

import numpy as np


def offsets(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def walk(n, rng):
    return rng.normal(size=n).cumsum()
