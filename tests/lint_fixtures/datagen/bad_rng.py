"""DIT002 fixture: module-global and unseeded RNG in dataset code."""

import random

import numpy as np


def jitter():
    return random.random()


def pick(items):
    return random.choice(items)


def offsets(n):
    return np.random.rand(n)


def fresh_rng():
    return np.random.default_rng()
