"""Tests for the analytics layer: clustering, frequent routes, outliers."""

import numpy as np
import pytest

from repro import DITAConfig, DITAEngine
from repro.analytics import (
    NOISE,
    TrajectoryDBSCAN,
    detect_outliers,
    knn_outlier_scores,
    mine_frequent_routes,
    route_for,
    similarity_graph,
    top_outliers,
)
from repro.datagen import citywide_dataset
from repro.distances import get_distance
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def engine():
    # 60 trips over 12 routes (duplication=5): clear cluster structure
    data = citywide_dataset(60, seed=81, duplication=5)
    cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
    return DITAEngine(data, cfg)


@pytest.fixture(scope="module")
def lonely_engine():
    """Route families plus two far-away loner trajectories."""
    data = list(citywide_dataset(40, seed=82, duplication=4))
    rng = np.random.default_rng(3)
    data.append(Trajectory(1000, rng.uniform(10, 11, size=(15, 2))))
    data.append(Trajectory(1001, rng.uniform(20, 21, size=(15, 2))))
    cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
    return DITAEngine(data, cfg)


TAU = 0.003


class TestSimilarityGraph:
    def test_symmetric_and_matches_brute_force(self, engine):
        adj = similarity_graph(engine, TAU)
        d = get_distance("dtw")
        trajs = [t for p in engine.partitions.values() for t in p]
        for a in trajs[:10]:
            for b in trajs:
                if a.traj_id == b.traj_id:
                    continue
                similar = d.compute(a.points, b.points) <= TAU
                assert (b.traj_id in adj[a.traj_id]) == similar
                assert (a.traj_id in adj[b.traj_id]) == similar

    def test_every_vertex_present(self, engine):
        adj = similarity_graph(engine, 1e-9)
        assert len(adj) == len(engine)


class TestDBSCAN:
    def test_recovers_route_families(self, engine):
        result = TrajectoryDBSCAN(eps=TAU, min_pts=3).fit(engine)
        # 60 trips over 12 routes of 5 members: expect ~12 clusters of ~5
        assert result.n_clusters >= 8
        sizes = [len(c) for c in result.clusters()]
        assert max(sizes) <= 12
        assert sum(sizes) + len(result.noise()) == len(engine)

    def test_min_pts_one_no_noise(self, engine):
        result = TrajectoryDBSCAN(eps=TAU, min_pts=1).fit(engine)
        assert result.noise() == []

    def test_huge_min_pts_all_noise(self, engine):
        result = TrajectoryDBSCAN(eps=TAU, min_pts=1000).fit(engine)
        assert result.n_clusters == 0
        assert len(result.noise()) == len(engine)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryDBSCAN(eps=-1)
        with pytest.raises(ValueError):
            TrajectoryDBSCAN(eps=1, min_pts=0)

    def test_labels_cover_everything(self, engine):
        result = TrajectoryDBSCAN(eps=TAU, min_pts=3).fit(engine)
        assert set(result.labels) == {
            t.traj_id for p in engine.partitions.values() for t in p
        }


class TestFrequentRoutes:
    def test_mining_finds_routes(self, engine):
        routes = mine_frequent_routes(engine, TAU, min_support=3)
        assert routes
        assert all(r.support >= 3 for r in routes)
        # support-ranked
        supports = [r.support for r in routes]
        assert supports == sorted(supports, reverse=True)

    def test_representative_is_member(self, engine):
        for r in mine_frequent_routes(engine, TAU, min_support=3)[:3]:
            assert r.representative.traj_id in r.member_ids

    def test_route_for_query(self, engine):
        routes = mine_frequent_routes(engine, TAU, min_support=3)
        rep = routes[0].representative
        hit = route_for(routes, rep, engine, TAU)
        assert hit is not None
        assert rep.traj_id in hit.member_ids

    def test_route_for_far_query_none(self, engine):
        routes = mine_frequent_routes(engine, TAU, min_support=3)
        far = Trajectory(-5, np.full((10, 2), 50.0))
        assert route_for(routes, far, engine, TAU) is None

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            mine_frequent_routes(engine, TAU, min_support=0)


class TestOutliers:
    def test_loners_detected(self, lonely_engine):
        report = detect_outliers(lonely_engine, TAU, min_neighbours=1)
        assert 1000 in report.outlier_ids
        assert 1001 in report.outlier_ids
        assert report.is_outlier(1000)

    def test_family_members_not_outliers(self, lonely_engine):
        report = detect_outliers(lonely_engine, TAU, min_neighbours=1)
        family_ids = [tid for tid in report.neighbour_counts if tid < 1000]
        flagged = set(report.outlier_ids)
        assert sum(1 for tid in family_ids if tid in flagged) <= len(family_ids) // 2

    def test_knn_scores_rank_loners_top(self, lonely_engine):
        top = top_outliers(lonely_engine, k=1, top=2)
        assert set(top) == {1000, 1001}

    def test_scores_cover_all(self, lonely_engine):
        scores = knn_outlier_scores(lonely_engine, k=1)
        assert len(scores) == len(lonely_engine)

    def test_validation(self, lonely_engine):
        with pytest.raises(ValueError):
            detect_outliers(lonely_engine, TAU, min_neighbours=0)
        with pytest.raises(ValueError):
            knn_outlier_scores(lonely_engine, k=0)
