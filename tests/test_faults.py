"""Fault injection + recovery: the deterministic half of the harness.

Covers the :mod:`repro.cluster.faults` primitives, the cluster's retry /
lineage-recovery / speculation machinery, and the engine/SQL wiring.  The
companion property sweep lives in ``tests/test_chaos.py``.
"""

import json

import pytest

from repro.cluster import (
    Cluster,
    FaultPlan,
    FaultReport,
    FaultSession,
    NetworkModel,
    PartitionLostError,
    RecoveryPolicy,
    TaskAbandonedError,
)
from repro.core.config import DITAConfig
from repro.core.engine import DITAEngine
from repro.core.knn import knn_search
from repro.datagen import beijing_like, sample_queries


# --------------------------------------------------------------------- #
# FaultPlan: seeded decision primitives
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(task_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(worker_crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(message_drop_rate=2.0)
        with pytest.raises(ValueError):
            FaultPlan(straggler_rate=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(crash_after_tasks_max=0)
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)

    def test_decisions_are_stateless(self):
        """The decision for event k never depends on what was asked before."""
        plan = FaultPlan(seed=3, task_failure_rate=0.5, message_drop_rate=0.5)
        first = plan.task_fails(17, 2)
        for _ in range(5):
            plan.task_fails(0, 0)  # unrelated draws must not perturb it
            plan.ship_dropped(17, 2)
        assert plan.task_fails(17, 2) == first
        assert plan.crash_set(8) == plan.crash_set(8)
        assert plan.straggler_factors(8) == plan.straggler_factors(8)

    def test_seed_changes_decisions(self):
        a = [FaultPlan(seed=0, task_failure_rate=0.5).task_fails(i, 0) for i in range(64)]
        b = [FaultPlan(seed=1, task_failure_rate=0.5).task_fails(i, 0) for i in range(64)]
        assert a != b

    def test_crash_set_leaves_a_survivor(self):
        plan = FaultPlan(seed=0, worker_crash_rate=1.0)
        for n in (1, 2, 4, 16):
            doomed = plan.crash_set(n)
            assert len(doomed) == n - 1
            assert 0 not in doomed  # the dropped doomed worker is the lowest id

    def test_crash_point_in_range(self):
        plan = FaultPlan(seed=5, worker_crash_rate=1.0, crash_after_tasks_max=4)
        for w in range(32):
            assert 0 <= plan.crash_point(w) < 4

    def test_straggler_factors(self):
        assert FaultPlan(straggler_rate=0.0).straggler_factors(4) == (1.0,) * 4
        slow = FaultPlan(straggler_rate=1.0, straggler_slowdown=3.0)
        assert slow.straggler_factors(4) == (3.0,) * 4

    def test_failure_progress_unit_interval(self):
        plan = FaultPlan(seed=9, task_failure_rate=1.0)
        for i in range(32):
            assert 0.0 <= plan.failure_progress(i, 0) < 1.0

    def test_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan(straggler_rate=0.5, straggler_slowdown=1.0).is_null
        assert not FaultPlan(task_failure_rate=0.1).is_null


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RecoveryPolicy(speculation_quantile=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(speculation_quantile=1.5)

    def test_backoff_doubles(self):
        p = RecoveryPolicy(backoff_base_s=0.01)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(1) == pytest.approx(0.02)
        assert p.backoff_s(3) == pytest.approx(0.08)


class TestFaultReport:
    def test_overhead_sums_all_seconds(self):
        r = FaultReport(
            wasted_compute_s=1.0,
            backoff_wait_s=2.0,
            rebuild_compute_s=3.0,
            resend_network_s=4.0,
            speculative_compute_s=5.0,
            straggler_excess_s=6.0,
        )
        assert r.overhead_s == pytest.approx(21.0)

    def test_to_dict_reprs_floats(self):
        d = FaultReport(wasted_compute_s=0.1, task_failures=2).to_dict()
        assert d["wasted_compute_s"] == repr(0.1)
        assert d["task_failures"] == 2
        assert d["overhead_s"] == repr(0.1)
        json.dumps(d)  # must be JSON-serializable as-is

    def test_merge_and_copy(self):
        a = FaultReport(task_failures=1, wasted_compute_s=0.5)
        b = a.copy()
        b.merge(FaultReport(task_failures=2, wasted_compute_s=0.25))
        assert (b.task_failures, b.wasted_compute_s) == (3, 0.75)
        assert (a.task_failures, a.wasted_compute_s) == (1, 0.5)  # copy is isolated


class TestFaultSession:
    def test_reset_rewinds_counters_keeps_stragglers(self):
        plan = FaultPlan(seed=1, straggler_rate=1.0, straggler_slowdown=2.0)
        s = FaultSession(plan=plan, n_workers=4)
        s.next_task_seq()
        s.next_ship_seq()
        s.report.task_failures = 7
        s.reset()
        assert (s.task_seq, s.ship_seq) == (0, 0)
        assert s.report.task_failures == 0
        assert s.report.stragglers == 4  # plan-derived, survives reset

    def test_quantile_one_disables_speculation(self):
        plan = FaultPlan(seed=1, straggler_rate=0.5, straggler_slowdown=4.0)
        policy = RecoveryPolicy(speculation_quantile=1.0)
        s = FaultSession(plan=plan, policy=policy, n_workers=8)
        for f in s._factors:
            assert not s.should_speculate(f)

    def test_use_speculation_false_disables(self):
        s = FaultSession(
            plan=FaultPlan(),
            policy=RecoveryPolicy(use_speculation=False),
            n_workers=4,
        )
        assert not s.should_speculate(10.0)


# --------------------------------------------------------------------- #
# cluster-level machinery
# --------------------------------------------------------------------- #


def _cluster(n_workers, plan, policy=None, **kw):
    c = Cluster(n_workers=n_workers, **kw)
    c.place_partitions(list(range(n_workers)))
    c.install_faults(plan, policy)
    return c


class TestClusterRetries:
    def test_transient_failures_retry_and_fn_runs_once(self):
        plan = FaultPlan(seed=2, task_failure_rate=0.5)
        c = _cluster(2, plan, RecoveryPolicy(max_retries=20))
        calls = []
        for i in range(40):
            out = c.run_local(i % 2, lambda i=i: calls.append(i) or i, work=1.0)
            assert out == i
        rep = c.fault_report()
        assert rep.task_failures > 0  # the plan did fire at rate 0.5
        assert rep.task_retries == rep.task_failures  # nothing abandoned
        assert rep.abandoned_tasks == 0
        assert rep.wasted_compute_s > 0
        assert rep.backoff_wait_s > 0
        # the task body ran exactly once per task, in submission order
        assert calls == list(range(40))

    def test_abandonment_is_typed_and_prompt(self):
        plan = FaultPlan(seed=0, task_failure_rate=1.0)
        c = _cluster(1, plan, RecoveryPolicy(max_retries=2))
        with pytest.raises(TaskAbandonedError) as exc:
            c.run_local(0, lambda: pytest.fail("body must never run"))
        assert exc.value.attempts == 3  # initial try + 2 retries
        assert "abandoned after 3 failed attempts" in str(exc.value)
        assert c.fault_report().abandoned_tasks == 1

    def test_zero_retries_abandons_on_first_failure(self):
        plan = FaultPlan(seed=0, task_failure_rate=1.0)
        c = _cluster(1, plan, RecoveryPolicy(max_retries=0))
        with pytest.raises(TaskAbandonedError) as exc:
            c.run_local(0, lambda: None)
        assert exc.value.attempts == 1

    def test_null_plan_matches_healthy_cluster(self):
        healthy = Cluster(n_workers=3)
        healthy.place_partitions([0, 1, 2])
        faulty = _cluster(3, FaultPlan(seed=7))  # all rates zero
        for c in (healthy, faulty):
            for pid in (0, 1, 2, 0):
                c.run_local(pid, lambda: None, work=2.0)
            c.ship(0, 1, 10_000)
        a, b = healthy.report(), faulty.report()
        assert a.worker_times == b.worker_times
        assert a.total_compute_s == b.total_compute_s
        assert b.faults is not None and b.faults.overhead_s == 0.0


class TestClusterCrashRecovery:
    def _crash_plan(self):
        # 2 workers, crash rate 1.0: the survivor guarantee keeps worker 0,
        # so worker 1 crashes before its first task (crash_after_tasks_max=1
        # forces crash point 0)
        return FaultPlan(seed=0, worker_crash_rate=1.0, crash_after_tasks_max=1)

    def test_lineage_recovery_replaces_and_rebuilds(self):
        c = _cluster(2, self._crash_plan())
        rebuilt = []
        c.register_rebuild(1, lambda: rebuilt.append(1), work=2.0)
        out = c.run_local(1, lambda: "ok")
        assert out == "ok"
        assert rebuilt == [1]  # the lineage closure ran for real
        assert c.worker_of(1) == 0  # re-placed on the survivor
        rep = c.fault_report()
        assert rep.worker_crashes == 1
        assert rep.recovered_partitions == 1
        assert rep.rebuild_compute_s > 0

    def test_crash_counted_once(self):
        c = _cluster(2, self._crash_plan())
        c.run_local(1, lambda: None)
        c.run_local(1, lambda: None)  # partition already recovered
        assert c.fault_report().worker_crashes == 1
        assert c.fault_report().recovered_partitions == 1

    def test_run_on_worker_reroutes(self):
        c = _cluster(2, self._crash_plan())
        c.run_on_worker(1, lambda: None)
        rep = c.fault_report()
        assert rep.rerouted_tasks == 1
        assert c.workers[1].core_clocks == [0.0]  # dead worker charged nothing

    def test_crash_of_only_replica_recovers_to_sole_survivor(self):
        # 4 workers all doomed but worker 0 (survivor guarantee); every
        # partition converges on worker 0 and every answer still arrives
        plan = FaultPlan(seed=1, worker_crash_rate=1.0, crash_after_tasks_max=1)
        c = _cluster(4, plan)
        for pid in range(4):
            assert c.run_local(pid, lambda pid=pid: pid) == pid
        assert [c.worker_of(pid) for pid in range(4)] == [0, 0, 0, 0]
        assert c.fault_report().worker_crashes == 3

    def test_partition_lost_when_no_survivor(self):
        c = _cluster(1, FaultPlan(seed=0))
        c.workers[0].alive = False  # the plan never kills the last worker;
        with pytest.raises(PartitionLostError):  # simulate a dead cluster
            c.run_local(0, lambda: None)

    def test_reset_revives_and_restores_placement(self):
        c = _cluster(2, self._crash_plan())
        c.run_local(1, lambda: None)
        assert not c.workers[1].alive and c.worker_of(1) == 0
        c.reset_clocks()
        assert c.workers[1].alive
        assert c.worker_of(1) == 1  # baseline placement restored
        assert c.fault_report().worker_crashes == 0

    def test_clear_faults_revives(self):
        c = _cluster(2, self._crash_plan())
        c.run_local(1, lambda: None)
        c.clear_faults()
        assert c.faults is None
        assert all(w.alive for w in c.workers)
        assert c.fault_report() is None


class TestClusterShip:
    def test_colocated_still_free(self):
        c = Cluster(n_workers=1, faults=FaultPlan(seed=0, message_drop_rate=1.0))
        c.place_partitions([0, 1])
        assert c.ship(0, 1, 10_000) == 0.0

    def test_drops_resend_and_cost(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=0.0, drop_detect_s=0.5)
        plan = FaultPlan(seed=4, message_drop_rate=0.5)
        c = _cluster(2, plan, RecoveryPolicy(max_retries=20), network=net)
        for _ in range(20):
            t = c.ship(0, 1, 1_000_000)
            assert t == pytest.approx(1.0)  # the successful transfer's time
        rep = c.fault_report()
        assert rep.message_drops > 0
        assert rep.message_resends == rep.message_drops
        # each drop wastes (t + drop_detect) at the sender and t at the dst
        assert rep.resend_network_s == pytest.approx(rep.message_drops * 2.5)
        assert rep.backoff_wait_s > 0

    def test_drop_forever_abandons_typed(self):
        plan = FaultPlan(seed=0, message_drop_rate=1.0)
        c = _cluster(2, plan, RecoveryPolicy(max_retries=3))
        with pytest.raises(TaskAbandonedError) as exc:
            c.ship(0, 1, 1000)
        assert exc.value.attempts == 4
        assert exc.value.what.startswith("message")

    def test_crash_during_ship_recovers_endpoints(self):
        plan = FaultPlan(seed=0, worker_crash_rate=1.0, crash_after_tasks_max=1)
        c = _cluster(2, plan)
        rebuilt = []
        c.register_rebuild(1, lambda: rebuilt.append(1))
        # worker 1 is doomed: shipping to its partition first recovers it
        # onto worker 0, making the transfer co-located (and free)
        assert c.ship(0, 1, 10_000) == 0.0
        assert rebuilt == [1]
        assert c.fault_report().recovered_partitions == 1


class TestSpeculation:
    @staticmethod
    def _one_straggler_seed(n_workers=4, rate=0.3, slowdown=4.0):
        for seed in range(200):
            plan = FaultPlan(seed=seed, straggler_rate=rate, straggler_slowdown=slowdown)
            factors = plan.straggler_factors(n_workers)
            if sum(1 for f in factors if f > 1.0) == 1:
                return seed, factors.index(slowdown)
        raise AssertionError("no single-straggler seed in range")

    def test_speculation_reduces_makespan_strictly(self):
        seed, slow_wid = self._one_straggler_seed()
        plan = FaultPlan(seed=seed, straggler_rate=0.3, straggler_slowdown=4.0)

        def run(use_speculation):
            c = _cluster(4, plan, RecoveryPolicy(use_speculation=use_speculation))
            for _ in range(4):
                for pid in range(4):
                    c.run_local(pid, lambda: None, work=1.0)
            return c.report()

        fast, slow = run(True), run(False)
        assert fast.makespan < slow.makespan  # strictly better
        assert fast.faults.speculative_tasks > 0
        assert fast.faults.speculative_wins > 0
        assert slow.faults.speculative_tasks == 0
        assert fast.faults.stragglers == slow.faults.stragglers == 1

    def test_straggler_excess_accounted(self):
        seed, slow_wid = self._one_straggler_seed()
        plan = FaultPlan(seed=seed, straggler_rate=0.3, straggler_slowdown=4.0)
        c = _cluster(4, plan, RecoveryPolicy(use_speculation=False))
        for pid in range(4):
            c.run_local(pid, lambda: None, work=1.0)
        rep = c.fault_report()
        # one worker ran its task 4x slower: 3 nominal task-costs of excess
        nominal = c._price_work(1.0)
        assert rep.straggler_excess_s == pytest.approx(3 * nominal)

    def test_speculative_win_charges_healthy_time(self):
        seed, slow_wid = self._one_straggler_seed()
        plan = FaultPlan(seed=seed, straggler_rate=0.3, straggler_slowdown=4.0)
        c = _cluster(4, plan)
        c.run_local(slow_wid, lambda: None, work=1.0)
        nominal = c._price_work(1.0)
        # winner finishes in healthy time; both copies charged that much
        assert c.workers[slow_wid].core_clocks[0] == pytest.approx(nominal)
        rep = c.fault_report()
        assert rep.speculative_compute_s == pytest.approx(nominal)
        assert rep.straggler_excess_s == 0.0


class TestReporting:
    def test_execution_report_carries_faults(self):
        c = _cluster(2, FaultPlan(seed=2, task_failure_rate=0.5), RecoveryPolicy(max_retries=20))
        for i in range(10):
            c.run_local(i % 2, lambda: None)
        rep = c.report()
        assert rep.faults is not None
        assert rep.faults.task_failures == c.fault_report().task_failures
        d = rep.to_dict()
        assert d["faults"]["task_failures"] == rep.faults.task_failures
        json.dumps(d)

    def test_fault_report_is_a_snapshot(self):
        c = _cluster(2, FaultPlan(seed=2, task_failure_rate=0.5), RecoveryPolicy(max_retries=20))
        c.run_local(0, lambda: None)
        snap = c.fault_report()
        before = snap.task_failures
        for i in range(20):
            c.run_local(i % 2, lambda: None)
        assert snap.task_failures == before  # later work doesn't mutate it

    def test_merge_propagates_faults(self):
        from repro.cluster import ExecutionReport

        a = ExecutionReport()
        b = ExecutionReport(faults=FaultReport(task_failures=2))
        a.merge(b)
        assert a.faults.task_failures == 2
        a.merge(b)
        assert a.faults.task_failures == 4
        b.faults.task_failures = 99
        assert a.faults.task_failures == 4  # merged a copy, not the object


# --------------------------------------------------------------------- #
# engine and SQL wiring
# --------------------------------------------------------------------- #

LOSSY = FaultPlan(
    seed=11,
    worker_crash_rate=0.5,
    task_failure_rate=0.3,
    message_drop_rate=0.3,
    straggler_rate=0.3,
    straggler_slowdown=4.0,
)
PATIENT = RecoveryPolicy(max_retries=8)


@pytest.fixture(scope="module")
def fault_city():
    return beijing_like(60, seed=7)


@pytest.fixture(scope="module")
def fault_config():
    return DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3)


def _ids(matches):
    return sorted((t.traj_id, d) for t, d in matches)


class TestEngineUnderFaults:
    def test_search_knn_join_equal_fault_free(self, fault_city, fault_config):
        query = sample_queries(fault_city, 1, seed=5)[0]
        healthy = DITAEngine(fault_city, fault_config)
        faulty = DITAEngine(fault_city, fault_config)
        faulty.cluster.install_faults(LOSSY, PATIENT)
        assert _ids(faulty.search(query, 0.01)) == _ids(healthy.search(query, 0.01))
        assert _ids(faulty.search_batch([query], [0.01])[0]) == _ids(
            healthy.search_batch([query], [0.01])[0]
        )
        assert _ids(knn_search(faulty, query, 5)) == _ids(knn_search(healthy, query, 5))
        assert faulty.self_join(0.005) == healthy.self_join(0.005)
        rep = faulty.fault_report()
        assert rep.worker_crashes > 0 and rep.recovered_partitions > 0

    def test_recovery_rebuilds_the_trie_for_real(self, fault_city, fault_config):
        engine = DITAEngine(fault_city, fault_config)
        engine.cluster.install_faults(
            FaultPlan(seed=0, worker_crash_rate=1.0, crash_after_tasks_max=1),
            PATIENT,
        )
        before = {pid: id(t) for pid, t in engine.tries.items()}
        query = sample_queries(fault_city, 1, seed=5)[0]
        engine.search(query, 0.01)
        after = {pid: id(t) for pid, t in engine.tries.items()}
        swapped = [pid for pid in before if before[pid] != after[pid]]
        assert swapped  # at least one partition was rebuilt via lineage
        assert engine.fault_report().recovered_partitions >= len(swapped)

    def test_config_driven_installation(self, fault_city, fault_config):
        cfg = fault_config.with_options(
            use_fault_injection=True,
            fault_task_failure_rate=0.3,
            max_retries=8,
            seed=13,
        )
        engine = DITAEngine(fault_city, cfg)
        assert engine.cluster.faults is not None
        assert engine.cluster.faults.plan == cfg.fault_plan()
        query = sample_queries(fault_city, 1, seed=5)[0]
        healthy = DITAEngine(fault_city, fault_config)
        assert _ids(engine.search(query, 0.01)) == _ids(healthy.search(query, 0.01))
        assert engine.fault_report().task_failures > 0

    def test_abandonment_propagates_typed(self, fault_city, fault_config):
        engine = DITAEngine(fault_city, fault_config)
        engine.cluster.install_faults(
            FaultPlan(seed=0, task_failure_rate=1.0), RecoveryPolicy(max_retries=1)
        )
        query = sample_queries(fault_city, 1, seed=5)[0]
        with pytest.raises(TaskAbandonedError):
            engine.search(query, 0.01)


class TestSQLUnderFaults:
    def test_session_results_equal_fault_free(self, fault_city):
        from repro.sql import DITASession

        base = DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3)
        faulty_cfg = base.with_options(
            use_fault_injection=True,
            fault_task_failure_rate=0.3,
            fault_worker_crash_rate=0.3,
            max_retries=8,
            seed=21,
        )
        query = sample_queries(fault_city, 1, seed=5)[0]
        rows = {}
        for name, cfg in (("healthy", base), ("faulty", faulty_cfg)):
            session = DITASession(cfg)
            session.register("taxi", fault_city)
            session.sql("CREATE INDEX idx ON taxi USE TRIE")
            out = session.sql(
                "SELECT taxi.traj_id, distance FROM taxi "
                "WHERE DTW(taxi, :q) <= 0.01 ORDER BY distance, taxi.traj_id",
                params={"q": query},
            )
            rows[name] = [(r["taxi.traj_id"], r["distance"]) for r in out]
        assert rows["faulty"] == rows["healthy"]

    def test_abandonment_becomes_sql_error(self, fault_city, fault_config):
        from repro.sql.physical import IndexSearch
        from repro.sql.tokens import SQLError

        engine = DITAEngine(fault_city, fault_config)
        engine.cluster.install_faults(
            FaultPlan(seed=0, task_failure_rate=1.0), RecoveryPolicy(max_retries=0)
        )
        query = sample_queries(fault_city, 1, seed=5)[0]
        op = IndexSearch(engine, "t", query, 0.01)
        with pytest.raises(SQLError, match="distributed execution failed"):
            op.execute({})
