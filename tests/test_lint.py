"""ditalint: every rule fires on its bad fixture, stays quiet on the good
one, and the suppression/baseline/reporting machinery behaves."""

import json
from pathlib import Path

import pytest

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.registry import all_rules
from repro.devtools.lint.reporters import json_report, sarif_report, text_report
from repro.devtools.lint.runner import SYNTAX_ERROR_ID, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint_fixture(rel):
    """Lint one fixture; ``rel`` doubles as the path rules scope on."""
    kept, suppressed = lint_source((FIXTURES / rel).read_text(), rel)
    return kept, suppressed


def rule_ids(findings):
    return {f.rule_id for f in findings}


# --------------------------------------------------------------------- #
# one bad + one good fixture per rule
# --------------------------------------------------------------------- #

class TestRuleFixtures:
    def test_dit001_wall_clock(self):
        kept, _ = lint_fixture("cluster/bad_wall_clock.py")
        hits = [f for f in kept if f.rule_id == "DIT001"]
        assert len(hits) == 4  # time.perf_counter x2, datetime.now, aliased pc
        assert any("perf_counter" in f.message for f in hits)

    def test_dit001_clean(self):
        kept, _ = lint_fixture("cluster/good_injected_clock.py")
        assert kept == []

    def test_dit002_rng(self):
        kept, _ = lint_fixture("datagen/bad_rng.py")
        hits = [f for f in kept if f.rule_id == "DIT002"]
        assert len(hits) == 4  # random.random, random.choice, np.random.rand, default_rng()
        assert any("default_rng" in f.message for f in hits)

    def test_dit002_clean(self):
        kept, _ = lint_fixture("datagen/good_rng.py")
        assert kept == []

    def test_dit003_float_equality(self):
        kept, _ = lint_fixture("distances/bad_float_eq.py")
        hits = [f for f in kept if f.rule_id == "DIT003"]
        assert len(hits) == 3  # == 0.0, == math.inf, != 1.5

    def test_dit003_clean(self):
        kept, _ = lint_fixture("distances/good_float_eq.py")
        assert kept == []

    def test_dit004_set_order(self):
        kept, _ = lint_fixture("anywhere/bad_set_order.py")
        hits = [f for f in kept if f.rule_id == "DIT004"]
        assert len(hits) == 4  # for-over-set, min(set), min(keys, key=), listcomp

    def test_dit004_clean(self):
        kept, _ = lint_fixture("anywhere/good_set_order.py")
        assert kept == []

    def test_dit005_contract(self):
        kept, _ = lint_fixture("distances/bad_contract.py")
        hits = [f for f in kept if f.rule_id == "DIT005"]
        assert len(hits) == 2
        messages = " ".join(f.message for f in hits)
        assert "BoundlessDistance" in messages
        assert "RogueMetric" in messages

    def test_dit005_clean(self):
        kept, _ = lint_fixture("distances/good_contract.py")
        assert kept == []

    def test_dit006_hygiene(self):
        kept, _ = lint_fixture("anywhere/bad_hygiene.py")
        hits = [f for f in kept if f.rule_id == "DIT006"]
        # two mutable defaults, the `filter` argument, the local `type =`
        assert len(hits) == 4

    def test_dit006_clean(self):
        kept, _ = lint_fixture("anywhere/good_hygiene.py")
        assert kept == []

    def test_scoped_rules_skip_other_dirs(self):
        """Wall-clock reads are fine outside cluster/core/baselines."""
        source = (FIXTURES / "cluster" / "bad_wall_clock.py").read_text()
        kept, _ = lint_source(source, "tools/profiler.py")
        assert "DIT001" not in rule_ids(kept)

    def test_syntax_error_reported(self):
        kept, _ = lint_source("def broken(:\n", "cluster/broken.py")
        assert rule_ids(kept) == {SYNTAX_ERROR_ID}


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #

class TestSuppression:
    def test_inline_and_next_line(self):
        kept, suppressed = lint_fixture("cluster/suppressed.py")
        assert {f.rule_id for f in suppressed} == {"DIT001", "DIT002"}
        assert len(suppressed) == 3
        # the undecorated time.monotonic() still counts
        assert [f.rule_id for f in kept] == ["DIT001"]
        assert "monotonic" in kept[0].message

    def test_file_level(self):
        kept, suppressed = lint_fixture("cluster/suppressed_file.py")
        assert kept == []
        assert len(suppressed) == 2  # both time.time() calls

    def test_magic_text_in_string_is_ignored(self):
        source = (
            "import time\n"
            "NOTE = '# ditalint: disable-file=DIT001'\n"
            "t = time.time()\n"
        )
        kept, suppressed = lint_source(source, "cluster/strings.py")
        assert rule_ids(kept) == {"DIT001"}
        assert suppressed == []


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #

class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        result = lint_paths([FIXTURES / "datagen"], root=REPO_ROOT)
        assert result.findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings, justification="fixture").write(path)

        again = lint_paths([FIXTURES / "datagen"], baseline=Baseline.load(path), root=REPO_ROOT)
        assert again.findings == []
        assert len(again.baselined) == len(result.findings)
        assert again.ok and again.exit_code == 0

    def test_partial_baseline_keeps_the_rest(self, tmp_path):
        result = lint_paths([FIXTURES / "datagen"], root=REPO_ROOT)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings[:1], justification="fixture").write(path)

        again = lint_paths([FIXTURES / "datagen"], baseline=Baseline.load(path), root=REPO_ROOT)
        assert len(again.baselined) == 1
        assert len(again.findings) == len(result.findings) - 1
        assert again.exit_code == 1

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        source = "import time\n\ndef f():\n    return time.time()\n"
        kept, _ = lint_source(source, "cluster/shift.py")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(kept, justification="fixture").write(path)

        shifted = "import time\n\n# a new comment pushes everything down\n\ndef f():\n    return time.time()\n"
        kept2, _ = lint_source(shifted, "cluster/shift.py")
        new, old = Baseline.load(path).split(kept2)
        assert new == [] and len(old) == 1

    def test_entries_require_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DIT001", "path": "x.py", "message": "m"}],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)


# --------------------------------------------------------------------- #
# reporters + CLI
# --------------------------------------------------------------------- #

class TestReporting:
    def test_json_report_shape(self):
        result = lint_paths([FIXTURES / "distances"], root=REPO_ROOT)
        payload = json.loads(json_report(result))
        assert payload["ok"] is False
        assert payload["files_checked"] == 4
        assert {"rule", "path", "line", "col", "message"} <= set(payload["findings"][0])
        assert all(f["path"].startswith("tests/lint_fixtures/") for f in payload["findings"])

    def test_text_report_mentions_counts(self):
        result = lint_paths([FIXTURES / "cluster"], root=REPO_ROOT)
        text = text_report(result)
        assert "files checked" in text
        assert "suppressed" in text

    def test_cli_exit_codes(self, capsys):
        assert lint_main([str(FIXTURES / "datagen" / "bad_rng.py"), "--no-baseline"]) == 1
        assert lint_main([str(FIXTURES / "datagen" / "good_rng.py"), "--no-baseline"]) == 0
        capsys.readouterr()

    def test_cli_missing_path_is_a_usage_error(self, capsys):
        assert lint_main(["/nonexistent/nope.py", "--no-baseline"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
        assert len(all_rules()) >= 6

    def test_cli_write_baseline(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        bad = str(FIXTURES / "datagen" / "bad_rng.py")
        assert lint_main([bad, "--baseline", str(path), "--write-baseline"]) == 0
        assert path.exists()
        # with the written baseline the same input now passes
        assert lint_main([bad, "--baseline", str(path)]) == 0
        capsys.readouterr()

    def test_cli_json_format(self, capsys):
        lint_main([str(FIXTURES / "datagen" / "bad_rng.py"), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]


# --------------------------------------------------------------------- #
# interprocedural rules (DIT007-DIT010) + DIT011/DIT012 fixtures
# --------------------------------------------------------------------- #

class TestInterprocFixtures:
    def test_dit007_two_level_helper_chain(self):
        """The acceptance case: the task body reaches time.time() only
        through two helper calls, and the finding names the chain."""
        kept, _ = lint_fixture("interproc/bad_task_body_clock.py")
        hits = [f for f in kept if f.rule_id == "DIT007"]
        assert len(hits) == 2  # submission site + charging function
        site = next(f for f in hits if "passed to run_local()" in f.message)
        assert "time.time" in site.message
        assert "->" in site.message  # the witness chain is spelled out

    def test_dit007_clean(self):
        kept, _ = lint_fixture("interproc/good_task_body_clock.py")
        assert kept == []

    def test_dit007_worker_entry_point(self):
        """A clock reach inside a body registered via register_task_kind()
        at module scope — the process backend's worker wiring idiom — is
        caught like any inline task closure."""
        kept, _ = lint_fixture("interproc/bad_worker_entry_clock.py")
        hits = [f for f in kept if f.rule_id == "DIT007"]
        assert len(hits) == 1
        assert "passed to register_task_kind()" in hits[0].message
        assert "time.perf_counter" in hits[0].message
        assert "->" in hits[0].message

    def test_dit007_worker_entry_point_clean(self):
        kept, _ = lint_fixture("interproc/good_worker_entry_clock.py")
        assert kept == []

    def test_dit007_suppressed_with_reason(self):
        kept, suppressed = lint_fixture("interproc/suppressed_task_body_clock.py")
        assert kept == []
        assert rule_ids(suppressed) == {"DIT007"}

    def test_dit008_untraced_charge(self):
        kept, _ = lint_fixture("interproc/bad_untraced_charge.py")
        hits = [f for f in kept if f.rule_id == "DIT008"]
        assert len(hits) == 2
        assert any("charge_compute" in f.message for f in hits)
        # serving-scheduler charge sites are held to the same bar
        assert any("charge_query" in f.message for f in hits)

    def test_dit008_clean(self):
        kept, _ = lint_fixture("interproc/good_traced_charge.py")
        assert kept == []

    def test_dit009_unbalanced_spans(self):
        kept, _ = lint_fixture("interproc/bad_unbalanced_span.py")
        hits = [f for f in kept if f.rule_id == "DIT009"]
        assert len(hits) == 2
        assert any("no end() in this function" in f.message for f in hits)
        assert any("not in a finally block" in f.message for f in hits)

    def test_dit009_clean(self):
        kept, _ = lint_fixture("interproc/good_balanced_span.py")
        assert kept == []

    def test_dit010_missing_lineage(self):
        kept, _ = lint_fixture("interproc/bad_missing_lineage.py")
        hits = [f for f in kept if f.rule_id == "DIT010"]
        assert len(hits) == 1
        assert "register_rebuild" in hits[0].message

    def test_dit010_clean_constructor_exempt_and_caller(self):
        kept, _ = lint_fixture("interproc/good_lineage.py")
        assert kept == []

    def test_dit010_migration_without_lineage(self):
        """ship() is a submission site too: migrating partition bytes to a
        destination with no registered rebuild closure is unrecoverable."""
        kept, _ = lint_fixture("interproc/bad_migration_no_lineage.py")
        hits = [f for f in kept if f.rule_id == "DIT010"]
        assert len(hits) == 1
        assert "migrates" in hits[0].message
        assert "register_rebuild" in hits[0].message

    def test_dit010_migration_with_lineage_clean(self):
        kept, _ = lint_fixture("interproc/good_migration_lineage.py")
        assert kept == []

    def test_dit011_dtype_contracts(self):
        kept, _ = lint_fixture("kernels/bad_dtypes.py")
        hits = [f for f in kept if f.rule_id == "DIT011"]
        messages = "\n".join(f.message for f in hits)
        assert len(hits) == 5
        assert "without an explicit dtype" in messages
        assert "float32" in messages and "float16" in messages
        assert "int32" in messages and "int16" in messages

    def test_dit011_clean_allows_tag_arrays(self):
        kept, _ = lint_fixture("kernels/good_dtypes.py")
        assert kept == []

    def test_dit011_raw_byte_readers(self):
        kept, _ = lint_fixture("storage/bad_raw_readers.py")
        hits = [f for f in kept if f.rule_id == "DIT011"]
        messages = "\n".join(f.message for f in hits)
        assert len(hits) == 2
        assert "numpy.memmap() reads raw bytes" in messages
        assert "numpy.fromfile() reads raw bytes" in messages

    def test_dit011_raw_readers_clean_with_pinned_or_npy(self):
        kept, _ = lint_fixture("storage/good_raw_readers.py")
        assert kept == []

    def test_dit012_bare_suppressions(self):
        kept, _ = lint_fixture("anywhere/bad_bare_suppression.py")
        hits = [f for f in kept if f.rule_id == "DIT012"]
        assert len(hits) == 2  # disable=DIT004 and disable=all, both bare

    def test_dit012_survives_disable_all(self):
        """A bare disable=all cannot silence the rule that flags it."""
        kept, _ = lint_fixture("anywhere/bad_bare_suppression.py")
        assert any(
            f.rule_id == "DIT012" and "disable=all" in f.message for f in kept
        )

    def test_dit012_clean_and_explicitly_suppressible(self):
        kept, suppressed = lint_fixture("anywhere/good_reasoned_suppression.py")
        assert kept == []
        assert rule_ids(suppressed) == {"DIT012"}


# --------------------------------------------------------------------- #
# SARIF, determinism, --explain, --changed
# --------------------------------------------------------------------- #

class TestSarif:
    def test_sarif_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        result = lint_paths([FIXTURES], root=REPO_ROOT)
        payload = json.loads(sarif_report(result))
        schema = json.loads(
            (REPO_ROOT / "tests" / "data" / "sarif-2.1.0-subset.schema.json").read_text()
        )
        jsonschema.validate(payload, schema)

    def test_sarif_carries_rules_results_and_suppressions(self):
        result = lint_paths([FIXTURES], root=REPO_ROOT)
        payload = json.loads(sarif_report(result))
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "ditalint"
        descriptors = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DIT001", "DIT007", "DIT011", "DIT012"} <= descriptors
        assert all(
            r["fullDescription"]["text"] for r in run["tool"]["driver"]["rules"]
        )
        kinds = {
            s["kind"] for r in run["results"] for s in r.get("suppressions", [])
        }
        assert "inSource" in kinds  # inline-disabled fixture findings carried

    def test_sarif_baselined_findings_are_marked_external(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths(LINTED_TREES, baseline=baseline, root=REPO_ROOT)
        payload = json.loads(sarif_report(result))
        kinds = [
            s["kind"]
            for r in payload["runs"][0]["results"]
            for s in r.get("suppressions", [])
        ]
        assert "external" in kinds


class TestDeterminism:
    def run_once(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        trees = [*LINTED_TREES, FIXTURES]
        result = lint_paths(trees, baseline=baseline, root=REPO_ROOT)
        return json_report(result), sarif_report(result)

    def test_json_and_sarif_are_byte_identical_across_runs(self):
        first_json, first_sarif = self.run_once()
        second_json, second_sarif = self.run_once()
        assert first_json == second_json
        assert first_sarif == second_sarif

    def test_sarif_contains_no_volatile_fields(self):
        _, sarif = self.run_once()
        for needle in ("timestamp", "startTimeUtc", "endTimeUtc", str(REPO_ROOT)):
            assert needle not in sarif


class TestCLIModes:
    def test_cli_sarif_format(self, capsys):
        lint_main(
            [str(FIXTURES / "datagen" / "bad_rng.py"), "--no-baseline", "--format", "sarif"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]

    def test_cli_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "DIT007"]) == 0
        out = capsys.readouterr().out
        assert "DIT007" in out
        assert "call graph" in out  # the paper-claim explanation, not the summary

    def test_cli_explain_every_rule(self, capsys):
        for rule in all_rules():
            assert lint_main(["--explain", rule.rule_id]) == 0
        capsys.readouterr()

    def test_cli_explain_unknown_rule(self, capsys):
        assert lint_main(["--explain", "DIT999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_changed_restricts_reporting(self, capsys, monkeypatch):
        from repro.devtools.lint import cli as cli_module

        bad = FIXTURES / "datagen" / "bad_rng.py"
        rel = bad.relative_to(Path.cwd()).as_posix() if bad.is_relative_to(Path.cwd()) else str(bad)
        monkeypatch.setattr(cli_module, "changed_files", lambda root=None: set())
        assert lint_main([str(bad), "--no-baseline", "--changed"]) == 0
        capsys.readouterr()
        monkeypatch.setattr(cli_module, "changed_files", lambda root=None: {rel})
        assert lint_main([str(bad), "--no-baseline", "--changed"]) == 1
        capsys.readouterr()


# --------------------------------------------------------------------- #
# the acceptance bar: the tree itself lints clean
# --------------------------------------------------------------------- #

LINTED_TREES = [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]


class TestRepositoryIsClean:
    def test_tree_has_no_unsuppressed_findings(self):
        """src, benchmarks and examples — including the linter itself —
        lint clean in one project (the CI invocation)."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths(LINTED_TREES, baseline=baseline, root=REPO_ROOT)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_baseline_carries_no_stale_entries(self):
        """Entries that no longer match any finding should be deleted."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths(LINTED_TREES, baseline=baseline, root=REPO_ROOT)
        assert len(result.baselined) == len(baseline.entries)

    def test_every_suppression_carries_a_reason(self):
        """DIT012 never fires on the tree: every inline suppression has a
        '-- reason' trailer (and the baseline loader already rejects
        entries without a justification)."""
        result = lint_paths(LINTED_TREES, root=REPO_ROOT)
        bare = [f for f in result.findings if f.rule_id == "DIT012"]
        assert bare == [], "\n".join(f.render() for f in bare)
