"""ditalint: every rule fires on its bad fixture, stays quiet on the good
one, and the suppression/baseline/reporting machinery behaves."""

import json
from pathlib import Path

import pytest

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.registry import all_rules
from repro.devtools.lint.reporters import json_report, text_report
from repro.devtools.lint.runner import SYNTAX_ERROR_ID, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint_fixture(rel):
    """Lint one fixture; ``rel`` doubles as the path rules scope on."""
    kept, suppressed = lint_source((FIXTURES / rel).read_text(), rel)
    return kept, suppressed


def rule_ids(findings):
    return {f.rule_id for f in findings}


# --------------------------------------------------------------------- #
# one bad + one good fixture per rule
# --------------------------------------------------------------------- #

class TestRuleFixtures:
    def test_dit001_wall_clock(self):
        kept, _ = lint_fixture("cluster/bad_wall_clock.py")
        hits = [f for f in kept if f.rule_id == "DIT001"]
        assert len(hits) == 4  # time.perf_counter x2, datetime.now, aliased pc
        assert any("perf_counter" in f.message for f in hits)

    def test_dit001_clean(self):
        kept, _ = lint_fixture("cluster/good_injected_clock.py")
        assert kept == []

    def test_dit002_rng(self):
        kept, _ = lint_fixture("datagen/bad_rng.py")
        hits = [f for f in kept if f.rule_id == "DIT002"]
        assert len(hits) == 4  # random.random, random.choice, np.random.rand, default_rng()
        assert any("default_rng" in f.message for f in hits)

    def test_dit002_clean(self):
        kept, _ = lint_fixture("datagen/good_rng.py")
        assert kept == []

    def test_dit003_float_equality(self):
        kept, _ = lint_fixture("distances/bad_float_eq.py")
        hits = [f for f in kept if f.rule_id == "DIT003"]
        assert len(hits) == 3  # == 0.0, == math.inf, != 1.5

    def test_dit003_clean(self):
        kept, _ = lint_fixture("distances/good_float_eq.py")
        assert kept == []

    def test_dit004_set_order(self):
        kept, _ = lint_fixture("anywhere/bad_set_order.py")
        hits = [f for f in kept if f.rule_id == "DIT004"]
        assert len(hits) == 4  # for-over-set, min(set), min(keys, key=), listcomp

    def test_dit004_clean(self):
        kept, _ = lint_fixture("anywhere/good_set_order.py")
        assert kept == []

    def test_dit005_contract(self):
        kept, _ = lint_fixture("distances/bad_contract.py")
        hits = [f for f in kept if f.rule_id == "DIT005"]
        assert len(hits) == 2
        messages = " ".join(f.message for f in hits)
        assert "BoundlessDistance" in messages
        assert "RogueMetric" in messages

    def test_dit005_clean(self):
        kept, _ = lint_fixture("distances/good_contract.py")
        assert kept == []

    def test_dit006_hygiene(self):
        kept, _ = lint_fixture("anywhere/bad_hygiene.py")
        hits = [f for f in kept if f.rule_id == "DIT006"]
        # two mutable defaults, the `filter` argument, the local `type =`
        assert len(hits) == 4

    def test_dit006_clean(self):
        kept, _ = lint_fixture("anywhere/good_hygiene.py")
        assert kept == []

    def test_scoped_rules_skip_other_dirs(self):
        """Wall-clock reads are fine outside cluster/core/baselines."""
        source = (FIXTURES / "cluster" / "bad_wall_clock.py").read_text()
        kept, _ = lint_source(source, "tools/profiler.py")
        assert "DIT001" not in rule_ids(kept)

    def test_syntax_error_reported(self):
        kept, _ = lint_source("def broken(:\n", "cluster/broken.py")
        assert rule_ids(kept) == {SYNTAX_ERROR_ID}


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #

class TestSuppression:
    def test_inline_and_next_line(self):
        kept, suppressed = lint_fixture("cluster/suppressed.py")
        assert {f.rule_id for f in suppressed} == {"DIT001", "DIT002"}
        assert len(suppressed) == 3
        # the undecorated time.monotonic() still counts
        assert [f.rule_id for f in kept] == ["DIT001"]
        assert "monotonic" in kept[0].message

    def test_file_level(self):
        kept, suppressed = lint_fixture("cluster/suppressed_file.py")
        assert kept == []
        assert len(suppressed) == 2  # both time.time() calls

    def test_magic_text_in_string_is_ignored(self):
        source = (
            "import time\n"
            "NOTE = '# ditalint: disable-file=DIT001'\n"
            "t = time.time()\n"
        )
        kept, suppressed = lint_source(source, "cluster/strings.py")
        assert rule_ids(kept) == {"DIT001"}
        assert suppressed == []


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #

class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        result = lint_paths([FIXTURES / "datagen"], root=REPO_ROOT)
        assert result.findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings, justification="fixture").write(path)

        again = lint_paths([FIXTURES / "datagen"], baseline=Baseline.load(path), root=REPO_ROOT)
        assert again.findings == []
        assert len(again.baselined) == len(result.findings)
        assert again.ok and again.exit_code == 0

    def test_partial_baseline_keeps_the_rest(self, tmp_path):
        result = lint_paths([FIXTURES / "datagen"], root=REPO_ROOT)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings[:1], justification="fixture").write(path)

        again = lint_paths([FIXTURES / "datagen"], baseline=Baseline.load(path), root=REPO_ROOT)
        assert len(again.baselined) == 1
        assert len(again.findings) == len(result.findings) - 1
        assert again.exit_code == 1

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        source = "import time\n\ndef f():\n    return time.time()\n"
        kept, _ = lint_source(source, "cluster/shift.py")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(kept, justification="fixture").write(path)

        shifted = "import time\n\n# a new comment pushes everything down\n\ndef f():\n    return time.time()\n"
        kept2, _ = lint_source(shifted, "cluster/shift.py")
        new, old = Baseline.load(path).split(kept2)
        assert new == [] and len(old) == 1

    def test_entries_require_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DIT001", "path": "x.py", "message": "m"}],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)


# --------------------------------------------------------------------- #
# reporters + CLI
# --------------------------------------------------------------------- #

class TestReporting:
    def test_json_report_shape(self):
        result = lint_paths([FIXTURES / "distances"], root=REPO_ROOT)
        payload = json.loads(json_report(result))
        assert payload["ok"] is False
        assert payload["files_checked"] == 4
        assert {"rule", "path", "line", "col", "message"} <= set(payload["findings"][0])
        assert all(f["path"].startswith("tests/lint_fixtures/") for f in payload["findings"])

    def test_text_report_mentions_counts(self):
        result = lint_paths([FIXTURES / "cluster"], root=REPO_ROOT)
        text = text_report(result)
        assert "files checked" in text
        assert "suppressed" in text

    def test_cli_exit_codes(self, capsys):
        assert lint_main([str(FIXTURES / "datagen" / "bad_rng.py"), "--no-baseline"]) == 1
        assert lint_main([str(FIXTURES / "datagen" / "good_rng.py"), "--no-baseline"]) == 0
        capsys.readouterr()

    def test_cli_missing_path_is_a_usage_error(self, capsys):
        assert lint_main(["/nonexistent/nope.py", "--no-baseline"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
        assert len(all_rules()) >= 6

    def test_cli_write_baseline(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        bad = str(FIXTURES / "datagen" / "bad_rng.py")
        assert lint_main([bad, "--baseline", str(path), "--write-baseline"]) == 0
        assert path.exists()
        # with the written baseline the same input now passes
        assert lint_main([bad, "--baseline", str(path)]) == 0
        capsys.readouterr()

    def test_cli_json_format(self, capsys):
        lint_main([str(FIXTURES / "datagen" / "bad_rng.py"), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]


# --------------------------------------------------------------------- #
# the acceptance bar: the tree itself lints clean
# --------------------------------------------------------------------- #

class TestRepositoryIsClean:
    def test_src_has_no_unsuppressed_findings(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_baseline_carries_no_stale_entries(self):
        """Entries that no longer match any finding should be deleted."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT)
        assert len(result.baselined) == len(baseline.entries)
