"""End-to-end join correctness and planner behaviour (Section 6)."""

import pytest

from conftest import brute_force_join
from repro import DITAConfig, DITAEngine
from repro.core.join import JoinStats
from repro.datagen import beijing_like, citywide_dataset
from repro.distances import get_distance


@pytest.fixture(scope="module")
def left():
    return beijing_like(90, seed=51)


@pytest.fixture(scope="module")
def right():
    return beijing_like(70, seed=52)


@pytest.fixture(scope="module")
def cfg():
    return DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)


@pytest.fixture(scope="module")
def left_engine(left, cfg):
    return DITAEngine(left, cfg)


@pytest.fixture(scope="module")
def right_engine(right, cfg):
    return DITAEngine(right, cfg)


class TestJoinCorrectness:
    @pytest.mark.parametrize("tau", [0.001, 0.003])
    def test_matches_brute_force(self, left_engine, right_engine, left, right, tau):
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in left_engine.join(right_engine, tau))
        want = brute_force_join(left, right, d, tau)
        assert got == want

    def test_self_join_excludes_identity(self, left_engine, left):
        pairs = left_engine.self_join(0.002)
        for a, b, _ in pairs:
            assert a < b
        d = get_distance("dtw")
        want = {
            (x.traj_id, y.traj_id)
            for i, x in enumerate(left)
            for y in list(left)[i + 1 :]
            if d.compute(x.points, y.points) <= 0.002
        }
        got = {(a, b) for a, b, _ in pairs}
        assert got == {(min(a, b), max(a, b)) for a, b in want}

    def test_no_balancing_still_correct(self, left_engine, right_engine, left, right):
        d = get_distance("dtw")
        got = sorted(
            (a, b)
            for a, b, _ in left_engine.join(
                right_engine, 0.002, use_orientation=False, use_division=False
            )
        )
        assert got == brute_force_join(left, right, d, 0.002)

    def test_frechet_join(self, cfg):
        data = citywide_dataset(60, seed=55)
        engine = DITAEngine(data, cfg, distance="frechet")
        d = get_distance("frechet")
        got = sorted((a, b) for a, b, _ in engine.join(engine, 0.001))
        assert got == brute_force_join(data, data, d, 0.001)

    def test_negative_tau_rejected(self, left_engine, right_engine):
        with pytest.raises(ValueError):
            left_engine.join(right_engine, -1)


class TestJoinStats:
    def test_stats_populated(self, left_engine, right_engine):
        stats = JoinStats()
        pairs = left_engine.join(right_engine, 0.003, stats=stats)
        assert stats.plan is not None
        assert stats.partition_pairs >= 1
        # verified_pairs counts verifier invocations; result_pairs counts
        # deduplicated output pairs
        assert stats.result_pairs == len(pairs)
        assert stats.verified_pairs >= stats.result_pairs
        assert stats.candidate_pairs >= len(pairs)
        assert stats.bytes_shipped >= 0

    def test_orientation_reduces_or_keeps_tc(self, left_engine, right_engine):
        from repro.core.join import JoinExecutor

        executor = JoinExecutor(
            left_engine, right_engine, left_engine.adapter, left_engine.cluster
        )
        plan_orient = executor.plan(0.003, use_orientation=True, use_division=False)
        plan_fixed = executor.plan(0.003, use_orientation=False, use_division=False)
        assert plan_orient.tc_global <= plan_fixed.tc_global + 1e-9

    def test_division_replicates_only_heavy(self, left_engine, right_engine):
        from repro.core.join import JoinExecutor

        executor = JoinExecutor(
            left_engine, right_engine, left_engine.adapter, left_engine.cluster
        )
        plan = executor.plan(0.003, use_division=True)
        if plan.replicas:
            costs = plan.total_costs
            import numpy as np

            tc_q = float(np.quantile(sorted(costs.values()), 0.98))
            for node, r in plan.replicas.items():
                if r > 1:
                    assert costs[node] > tc_q


class TestJoinStatsSemantics:
    """Regression: ``verified_pairs`` used to report deduplicated *result*
    pairs, and ``candidate_pairs`` was only accumulated when the caller
    passed a stats object."""

    def _fresh(self, n, seed, tracing=False):
        data = beijing_like(n, seed=seed)
        cfg = DITAConfig(
            num_global_partitions=2,
            trie_fanout=4,
            num_pivots=3,
            trie_leaf_capacity=4,
            use_tracing=tracing,
        )
        return DITAEngine(data, cfg)

    def test_verified_counts_verifier_invocations(self):
        engine = self._fresh(120, seed=7)
        stats = JoinStats()
        pairs = engine.join(engine, 0.008, stats=stats)
        # every trie candidate enters the verifier exactly once
        assert stats.verified_pairs == stats.candidate_pairs
        # and on this dataset the verifier really rejects some of them, so
        # the invocation count is distinguishable from the result count
        assert stats.verified_pairs > stats.result_pairs
        assert stats.result_pairs == len(pairs)

    def test_counts_independent_of_stats_argument(self):
        """The same join must count identically whether or not the caller
        passes a stats object (read back through the metrics registry)."""
        with_stats = self._fresh(90, seed=9, tracing=True)
        with_stats.join(with_stats, 0.005, stats=JoinStats())
        without = self._fresh(90, seed=9, tracing=True)
        without.join(without, 0.005)
        keys = [
            "join.candidate_pairs",
            "join.verified_pairs",
            "join.result_pairs",
            "join.trajectories_shipped",
            "join.bytes_shipped",
        ]
        got_a = {k: with_stats.metrics.value(k) for k in keys}
        got_b = {k: without.metrics.value(k) for k in keys}
        assert got_a == got_b
        assert got_a["join.candidate_pairs"] > 0
