"""Property tests for the DTW lower bounds (Lemmas 4.1, 4.3, 5.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import amd, mbr_accumulated_min_dist, opamd, pamd
from repro.core.pivots import pivot_indices
from repro.distances.dtw import dtw
from repro.geometry.mbr import MBR

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_len=1, max_len=12):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


T1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
T3 = np.array([(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)], float)


class TestAMD:
    def test_lemma_4_1(self):
        """AMD <= DTW so AMD > tau proves dissimilarity."""
        assert amd(T1, T3) <= dtw(T1, T3) + 1e-9

    @settings(max_examples=100)
    @given(trajectories(), trajectories())
    def test_amd_lower_bounds_dtw(self, t, q):
        assert amd(t, q) <= dtw(t, q) + 1e-6

    def test_single_point(self):
        t = np.array([(0, 0)], float)
        q = np.array([(3, 4)], float)
        assert amd(t, q) == pytest.approx(5.0)


class TestPAMD:
    def test_paper_example_4_4(self):
        """PAMD(T1, T3) = 3.41 with neighbor pivots (3,2), (4,4)."""
        idx = pivot_indices(T1, 2, "neighbor")
        assert pamd(T1, T3, idx) == pytest.approx(3.41, abs=0.01)

    def test_pamd_prunes_example(self):
        """Example 4.4: PAMD = 3.41 > tau = 3 so T1, T3 dissimilar."""
        idx = pivot_indices(T1, 2, "neighbor")
        assert pamd(T1, T3, idx) > 3.0

    @settings(max_examples=100)
    @given(trajectories(min_len=3), trajectories(), st.integers(1, 4))
    def test_chain_pamd_amd_dtw(self, t, q, k):
        """Lemma 4.3 chain: PAMD <= AMD <= DTW."""
        idx = pivot_indices(t, k, "neighbor")
        p = pamd(t, q, idx)
        a = amd(t, q)
        assert p <= a + 1e-6
        assert a <= dtw(t, q) + 1e-6

    def test_no_pivots_endpoint_bound(self):
        assert pamd(T1, T3, []) == pytest.approx(
            float(np.linalg.norm(T1[0] - T3[0])) + float(np.linalg.norm(T1[-1] - T3[-1]))
        )

    def test_non_interior_pivot_rejected(self):
        with pytest.raises(ValueError):
            pamd(T1, T3, [0])
        with pytest.raises(ValueError):
            pamd(T1, T3, [5])


class TestOPAMD:
    @settings(max_examples=120)
    @given(trajectories(min_len=3), trajectories(), st.integers(1, 4), st.floats(0.1, 60))
    def test_conditional_soundness(self, t, q, k, tau):
        """Lemma 5.1: whenever DTW <= tau, OPAMD <= DTW — so OPAMD > tau
        never prunes a true answer."""
        idx = pivot_indices(t, k, "neighbor")
        d = dtw(t, q)
        o = opamd(t, q, idx, tau)
        if d <= tau:
            assert o <= d + 1e-6

    @settings(max_examples=80)
    @given(trajectories(min_len=3), trajectories(), st.integers(1, 4), st.floats(0.1, 60))
    def test_at_least_pamd(self, t, q, k, tau):
        """Suffix restriction can only tighten: OPAMD >= PAMD — except when
        the endpoint base cost alone exceeds tau, where OPAMD returns early
        (the pair is pruned either way)."""
        idx = pivot_indices(t, k, "neighbor")
        base = float(np.linalg.norm(t[0] - q[0])) + float(np.linalg.norm(t[-1] - q[-1]))
        o = opamd(t, q, idx, tau)
        if base > tau:
            assert o > tau  # still prunes
        else:
            assert o >= pamd(t, q, idx) - 1e-9 or o == math.inf

    def test_inf_when_pivot_unreachable(self):
        t = np.array([(0, 0), (100, 100), (0.1, 0.1)], float)
        q = np.array([(0, 0), (0.1, 0.1)], float)
        # endpoints align closely but the pivot (100,100) is far from all
        # of Q, so similarity within tau = 1 is impossible
        assert opamd(t, q, [1], 1.0) == math.inf


class TestMBRAccumulated:
    def test_basic(self):
        q = np.array([(0, 0), (5, 5)], float)
        align = [MBR((0, 0), (1, 1)), MBR((4, 4), (6, 6))]
        pivots = [MBR((10, 10), (11, 11))]
        v = mbr_accumulated_min_dist(q, align, pivots)
        # q1 inside first MBR, qn inside last MBR; pivot MBR ~ dist from (5,5)
        assert v == pytest.approx(math.sqrt(50), abs=1e-6)

    def test_requires_two_align(self):
        q = np.array([(0, 0)], float)
        with pytest.raises(ValueError):
            mbr_accumulated_min_dist(q, [MBR((0, 0), (1, 1))], [])

    @settings(max_examples=60)
    @given(trajectories(min_len=3, max_len=8), trajectories(min_len=1, max_len=8))
    def test_mbr_version_no_tighter_than_point_version(self, t, q):
        """Grouping by MBRs only loosens the bound: MBR-AMD <= PAMD."""
        idx = pivot_indices(t, 2, "neighbor")
        align = [MBR.of_point(t[0]), MBR.of_point(t[-1])]
        pivots = [MBR.of_point(t[i]) for i in idx]
        mbr_bound = mbr_accumulated_min_dist(q, align, pivots)
        assert mbr_bound <= pamd(t, q, idx) + 1e-9
