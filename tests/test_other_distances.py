"""Tests for Fréchet, EDR, LCSS and ERP (Appendix A functions)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import (
    available_distances,
    edr,
    edr_threshold,
    erp,
    erp_threshold,
    frechet,
    frechet_threshold,
    get_distance,
    lcss,
    lcss_dissimilarity,
)
from repro.distances.dtw import dtw

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_len=1, max_len=9):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


T1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
T3 = np.array([(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)], float)


class TestFrechet:
    def test_paper_value(self):
        """Frechet(T1, T3) = 1.41 per Appendix A."""
        assert frechet(T1, T3) == pytest.approx(1.41, abs=0.01)

    def test_identity_and_symmetry(self):
        assert frechet(T1, T1) == 0.0
        assert frechet(T1, T3) == pytest.approx(frechet(T3, T1))

    def test_single_point(self):
        t = np.array([(0, 0)], float)
        q = np.array([(3, 4), (0, 1)], float)
        assert frechet(t, q) == pytest.approx(5.0)

    def test_at_most_dtw(self):
        """max-accumulation never exceeds sum-accumulation."""
        assert frechet(T1, T3) <= dtw(T1, T3)

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), trajectories())
    def test_triangle_inequality(self, a, b, c):
        """Fréchet is a metric — the property VP-trees rely on."""
        assert frechet(a, c) <= frechet(a, b) + frechet(b, c) + 1e-9

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), st.floats(0.1, 40))
    def test_threshold_agrees(self, t, q, tau):
        f = frechet(t, q)
        ft = frechet_threshold(t, q, tau)
        if f <= tau:
            assert ft == pytest.approx(f, rel=1e-9, abs=1e-9)
        else:
            assert ft == math.inf

    def test_threshold_prunes(self):
        assert frechet_threshold(T1, T3, 1.0) == math.inf


class TestEDR:
    def test_paper_value(self):
        """EDR(T1, T3) = 2 with epsilon = 1 per Appendix A."""
        assert edr(T1, T3, 1.0) == 2

    def test_identity(self):
        assert edr(T1, T1, 0.5) == 0

    def test_disjoint_equals_max_len(self):
        t = np.zeros((3, 2))
        q = np.full((5, 2), 100.0)
        assert edr(t, q, 1.0) == 5

    def test_length_lower_bound(self):
        t = np.zeros((2, 2))
        q = np.zeros((7, 2))
        assert edr(t, q, 1.0) >= 5

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            edr(T1, T3, -1.0)

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_bounds(self, t, q):
        d = edr(t, q, 1.0)
        m, n = t.shape[0], q.shape[0]
        assert abs(m - n) <= d <= max(m, n)

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_symmetry(self, t, q):
        assert edr(t, q, 1.0) == edr(q, t, 1.0)

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), st.integers(0, 8))
    def test_threshold_agrees(self, t, q, tau):
        d = edr(t, q, 1.0)
        dt = edr_threshold(t, q, 1.0, tau)
        if d <= tau:
            assert dt == d
        else:
            assert dt == math.inf


class TestLCSS:
    def test_standard_definition_value(self):
        """Standard (Vlachos) LCSS with delta=1, eps=1 gives 4 for T1/T3.

        The paper's Example value (2) is inconsistent with its own
        recursion — see EXPERIMENTS.md — so we pin the standard semantics.
        """
        assert lcss(T1, T3, 1.0, 1) == 4

    def test_identity_full_match(self):
        assert lcss(T1, T1, 0.1, 0) == T1.shape[0]
        assert lcss_dissimilarity(T1, T1, 0.1, 0) == 0

    def test_disjoint_zero(self):
        t = np.zeros((3, 2))
        q = np.full((3, 2), 100.0)
        assert lcss(t, q, 1.0, 3) == 0

    def test_delta_constraint(self):
        """delta = 0 forces diagonal matching."""
        t = np.array([(0, 0), (1, 1)], float)
        q = np.array([(1, 1), (0, 0)], float)
        assert lcss(t, q, 0.1, 0) == 0
        assert lcss(t, q, 0.1, 1) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            lcss(T1, T3, -1.0, 1)
        with pytest.raises(ValueError):
            lcss(T1, T3, 1.0, -1)

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_bounds(self, t, q):
        v = lcss(t, q, 1.0, 3)
        assert 0 <= v <= min(t.shape[0], q.shape[0])

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_dissimilarity_non_negative(self, t, q):
        assert lcss_dissimilarity(t, q, 1.0, 3) >= 0


class TestERP:
    GAP = np.zeros(2)

    def test_identity(self):
        assert erp(T1, T1, self.GAP) == pytest.approx(0.0)

    def test_symmetry(self):
        assert erp(T1, T3, self.GAP) == pytest.approx(erp(T3, T1, self.GAP))

    def test_gap_shape_validation(self):
        with pytest.raises(ValueError):
            erp(T1, T3, np.zeros(3))

    def test_single_vs_empty_cost(self):
        """Deleting everything costs the summed distance to the gap point."""
        t = np.array([(3, 4)], float)
        q = np.array([(0, 0)], float)
        # match costs 5; delete-both costs 5 + 0 = 5: equal here
        assert erp(t, q, self.GAP) == pytest.approx(5.0)

    @settings(max_examples=40)
    @given(trajectories(max_len=6), trajectories(max_len=6), trajectories(max_len=6))
    def test_triangle_inequality(self, a, b, c):
        g = self.GAP
        assert erp(a, c, g) <= erp(a, b, g) + erp(b, c, g) + 1e-6

    @settings(max_examples=40)
    @given(trajectories(), trajectories(), st.floats(0.1, 60))
    def test_threshold_agrees(self, t, q, tau):
        d = erp(t, q, self.GAP)
        dt = erp_threshold(t, q, self.GAP, tau)
        if d <= tau:
            assert dt == pytest.approx(d, rel=1e-9, abs=1e-9)
        else:
            assert dt == math.inf


class TestRegistry:
    def test_all_registered(self):
        assert set(available_distances()) >= {"dtw", "frechet", "edr", "lcss", "erp"}

    def test_get_with_params(self):
        d = get_distance("edr", epsilon=0.5)
        assert d.epsilon == 0.5

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_distance("nope")

    def test_metric_flags(self):
        assert get_distance("frechet").is_metric
        assert get_distance("erp").is_metric
        assert not get_distance("dtw").is_metric
        assert not get_distance("edr").is_metric

    def test_lcss_compute_is_dissimilarity(self):
        d = get_distance("lcss", epsilon=1.0, delta=1)
        assert d.compute(T1, T1) == 0.0
        assert d.compute(T1, T3) == min(6, 6) - 4
