"""Simulator purity: same seed, twice, byte-identical metrics.

The cluster simulator's default task measure prices work deterministically
(never reading the host clock), so every simulated metric the paper's
figures are built from — makespan, load ratio, bytes shipped — must be a
pure function of the dataset seed and the configuration.
"""

import json

from repro import DITAConfig, DITAEngine
from repro.cluster import Cluster, make_fixed_cost_measure, unit_cost_measure
from repro.datagen import beijing_like


def _run_once(seed):
    """One full search + self-join job; returns every observable as JSON."""
    dataset = beijing_like(60, seed=seed)
    config = DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3)
    engine = DITAEngine(dataset, config)

    query = dataset.by_id(sorted(dataset.ids)[0])
    matches = engine.search(query, 0.003)
    batch_queries = [dataset.by_id(i) for i in sorted(dataset.ids)[:3]]
    batch_matches = engine.search_batch(batch_queries, [0.003] * 3)
    pairs = engine.self_join(0.002)
    report = engine.cluster.report()

    return json.dumps(
        {
            "matches": sorted((t.traj_id, repr(d)) for t, d in matches),
            "batch_matches": [
                sorted((t.traj_id, repr(d)) for t, d in m) for m in batch_matches
            ],
            "pairs": sorted((a, b, repr(d)) for a, b, d in pairs),
            "worker_times": {str(k): repr(v) for k, v in sorted(report.worker_times.items())},
            "makespan": repr(report.makespan),
            "load_ratio": repr(report.load_ratio),
            "compute_s": repr(report.total_compute_s),
            "network_s": repr(report.total_network_s),
            "network_bytes": report.total_network_bytes,
            "tasks": report.tasks,
        },
        sort_keys=True,
    ).encode()


class TestByteIdenticalRuns:
    def test_same_seed_same_bytes(self):
        assert _run_once(7) == _run_once(7)

    def test_different_seed_different_data(self):
        assert _run_once(7) != _run_once(8)


class TestMeasureHook:
    def test_default_is_unit_cost(self):
        cluster = Cluster(2)
        assert cluster.measure is unit_cost_measure
        cluster.place_partitions([0, 1])
        cluster.run_local(0, lambda: None, work=3.0)
        cluster.run_local(1, lambda: None, work=5.0)
        report = cluster.report()
        assert report.worker_times[0] == 3.0e-3
        assert report.worker_times[1] == 5.0e-3

    def test_fixed_cost_measure_injects(self):
        cluster = Cluster(1, measure=make_fixed_cost_measure(0.25))
        cluster.place_partitions([0])
        result = cluster.run_local(0, lambda: "ok", work=100.0)
        assert result == "ok"
        assert cluster.report().worker_times[0] == 0.25 * 100.0

    def test_work_scales_with_partition_size(self):
        """Engine search charges per-partition work, so worker clocks differ
        deterministically rather than via host-timing noise."""
        dataset = beijing_like(40, seed=3)
        engine = DITAEngine(dataset, DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3))
        query = dataset.by_id(sorted(dataset.ids)[0])
        engine.search(query, 0.003)
        first = engine.cluster.report().worker_times
        engine.cluster.reset_clocks()
        engine.search(query, 0.003)
        assert engine.cluster.report().worker_times == first


def _run_traced(seed):
    """The _run_once job with tracing on; returns (observables, trace bytes)."""
    dataset = beijing_like(60, seed=seed)
    config = DITAConfig(
        num_global_partitions=3, trie_fanout=4, num_pivots=3, use_tracing=True
    )
    engine = DITAEngine(dataset, config)

    query = dataset.by_id(sorted(dataset.ids)[0])
    matches = engine.search(query, 0.003)
    pairs = engine.self_join(0.002)
    report = engine.cluster.report()
    observables = json.dumps(
        {
            "matches": sorted((t.traj_id, repr(d)) for t, d in matches),
            "pairs": sorted((a, b, repr(d)) for a, b, d in pairs),
            "report": report.to_dict(),
        },
        sort_keys=True,
    ).encode()
    trace = (
        engine.cluster.tracer.export_json()
        + engine.cluster.tracer.export_chrome()
        + engine.metrics.to_json()
    ).encode()
    return observables, trace


class TestTracedByteIdenticalRuns:
    def test_same_seed_same_trace_bytes(self):
        """Trace + metrics exports of two same-seed runs are byte-identical."""
        a_obs, a_trace = _run_traced(7)
        b_obs, b_trace = _run_traced(7)
        assert a_obs == b_obs
        assert a_trace == b_trace

    def test_tracing_is_observation_only(self):
        """Turning tracing on must not perturb any simulated observable:
        results, worker clocks, makespan, bytes shipped are unchanged."""
        dataset = beijing_like(60, seed=7)
        traced_obs, _ = _run_traced(7)

        config = DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3)
        engine = DITAEngine(dataset, config)
        query = dataset.by_id(sorted(dataset.ids)[0])
        matches = engine.search(query, 0.003)
        pairs = engine.self_join(0.002)
        plain_obs = json.dumps(
            {
                "matches": sorted((t.traj_id, repr(d)) for t, d in matches),
                "pairs": sorted((a, b, repr(d)) for a, b, d in pairs),
                "report": engine.cluster.report().to_dict(),
            },
            sort_keys=True,
        ).encode()
        assert traced_obs == plain_obs
