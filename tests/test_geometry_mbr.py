"""Unit and property tests for repro.geometry.mbr."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR, coverage_filter, mbr_of_trajectory

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return MBR((x1, y1), (x2, y2))


@st.composite
def point_sets(draw):
    n = draw(st.integers(1, 12))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


class TestConstruction:
    def test_invalid_corners(self):
        with pytest.raises(ValueError):
            MBR((1, 1), (0, 0))

    def test_of_points(self):
        m = MBR.of_points(np.array([(1, 5), (3, 2)], float))
        assert m.low.tolist() == [1, 2]
        assert m.high.tolist() == [3, 5]

    def test_of_point_degenerate(self):
        m = MBR.of_point((2, 3))
        assert m.area() == 0.0
        assert m.contains_point((2, 3))

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.of_points(np.empty((0, 2)))

    def test_union_all(self):
        m = MBR.union_all([MBR.of_point((0, 0)), MBR.of_point((4, -2))])
        assert m.low.tolist() == [0, -2]
        assert m.high.tolist() == [4, 0]

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_all([])

    @given(point_sets())
    def test_of_points_covers_all(self, pts):
        m = MBR.of_points(pts)
        for p in pts:
            assert m.contains_point(p)


class TestGeometry:
    def test_area_margin(self):
        m = MBR((0, 0), (2, 3))
        assert m.area() == 6.0
        assert m.margin() == 5.0

    def test_center(self):
        assert MBR((0, 0), (2, 4)).center.tolist() == [1, 2]

    def test_contains_mbr(self):
        outer = MBR((0, 0), (10, 10))
        inner = MBR((1, 1), (2, 2))
        assert outer.contains_mbr(inner)
        assert not inner.contains_mbr(outer)

    def test_intersects(self):
        a = MBR((0, 0), (2, 2))
        b = MBR((1, 1), (3, 3))
        c = MBR((5, 5), (6, 6))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_intersects_touching_edge(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((1, 0), (2, 1))
        assert a.intersects(b)

    def test_expand(self):
        m = MBR((0, 0), (1, 1)).expand(0.5)
        assert m.low.tolist() == [-0.5, -0.5]
        assert m.high.tolist() == [1.5, 1.5]

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            MBR((0, 0), (1, 1)).expand(-0.1)

    def test_equality_and_hash(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((0, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != MBR((0, 0), (1, 2))


class TestMinDist:
    def test_inside_is_zero(self):
        m = MBR((0, 0), (2, 2))
        assert m.min_dist_point((1, 1)) == 0.0

    def test_side(self):
        m = MBR((0, 0), (2, 2))
        assert m.min_dist_point((3, 1)) == pytest.approx(1.0)

    def test_corner(self):
        m = MBR((0, 0), (2, 2))
        assert m.min_dist_point((3, 3)) == pytest.approx(np.sqrt(2))

    def test_min_dist_points_vectorized(self):
        m = MBR((0, 0), (2, 2))
        pts = np.array([(1, 1), (3, 1), (3, 3)], float)
        d = m.min_dist_points(pts)
        assert d[0] == 0.0
        assert d[1] == pytest.approx(1.0)
        assert d[2] == pytest.approx(np.sqrt(2))

    def test_min_dist_trajectory(self):
        m = MBR((0, 0), (1, 1))
        pts = np.array([(5, 5), (2, 1)], float)
        assert m.min_dist_trajectory(pts) == pytest.approx(1.0)

    def test_min_dist_mbr_overlapping_zero(self):
        a = MBR((0, 0), (2, 2))
        b = MBR((1, 1), (3, 3))
        assert a.min_dist_mbr(b) == 0.0

    def test_min_dist_mbr_gap(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((4, 1), (5, 2))
        assert a.min_dist_mbr(b) == pytest.approx(3.0)

    def test_max_dist_point(self):
        m = MBR((0, 0), (2, 2))
        assert m.max_dist_point((0, 0)) == pytest.approx(np.sqrt(8))

    @given(mbrs(), st.tuples(coords, coords))
    def test_min_dist_lower_bounds_contents(self, m, p):
        """MinDist(q, MBR) <= dist(q, x) for every x in the MBR — sampled at
        corners and center."""
        q = np.asarray(p, float)
        md = m.min_dist_point(q)
        for x in (m.low, m.high, m.center):
            assert md <= float(np.linalg.norm(q - x)) + 1e-9

    @given(mbrs(), mbrs())
    def test_min_dist_mbr_symmetric(self, a, b):
        assert a.min_dist_mbr(b) == pytest.approx(b.min_dist_mbr(a))


class TestCoverageFilter:
    def test_identical_pass(self):
        m = MBR((0, 0), (1, 1))
        assert coverage_filter(m, m, 0.0)

    def test_far_apart_fails(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((10, 10), (11, 11))
        assert not coverage_filter(a, b, 1.0)

    def test_tau_makes_it_pass(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((2, 2), (3, 3))
        assert coverage_filter(a, b, 5.0)

    def test_asymmetric_extent(self):
        # T spans far beyond Q: EMBR(Q, tau) cannot cover MBR(T)
        t = MBR((0, 0), (100, 100))
        q = MBR((0, 0), (1, 1))
        assert not coverage_filter(t, q, 1.0)

    def test_mbr_of_trajectory(self):
        m = mbr_of_trajectory(np.array([(0, 5), (2, 1)], float))
        assert m.low.tolist() == [0, 1]
        assert m.high.tolist() == [2, 5]
