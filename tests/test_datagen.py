"""Tests for the synthetic dataset generators and query sampling."""

import numpy as np
import pytest

from repro.datagen import (
    beijing_like,
    chengdu_like,
    citywide_dataset,
    osm_like,
    random_walk_dataset,
    sample_queries,
    worldwide_dataset,
)
from repro.distances import get_distance
from repro.trajectory import dataset_stats


class TestGenerators:
    def test_deterministic(self):
        a = citywide_dataset(30, seed=7)
        b = citywide_dataset(30, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x.points, y.points)

    def test_different_seeds_differ(self):
        a = citywide_dataset(10, seed=1)
        b = citywide_dataset(10, seed=2)
        assert not np.array_equal(a[0].points, b[0].points)

    def test_cardinality(self):
        assert len(citywide_dataset(55, seed=0)) == 55
        assert len(worldwide_dataset(23, seed=0)) == 23
        assert len(random_walk_dataset(12, seed=0)) == 12

    def test_invalid_n(self):
        for gen in (citywide_dataset, worldwide_dataset, random_walk_dataset):
            with pytest.raises(ValueError):
                gen(0)

    def test_length_bounds_respected(self):
        ds = citywide_dataset(60, seed=3, min_len=7, max_len=50)
        stats = dataset_stats(ds)
        assert stats.min_len >= 7
        assert stats.max_len <= 50

    def test_citywide_confined_to_extent(self):
        ds = citywide_dataset(40, seed=5, extent=0.2)
        for t in ds:
            assert np.all(t.points >= 0) and np.all(t.points <= 0.2)

    def test_route_families_produce_similar_pairs(self):
        """The duplication mechanism must yield matches at the paper's tau."""
        ds = citywide_dataset(40, seed=9, duplication=4)
        d = get_distance("dtw")
        trajs = list(ds)
        found = any(
            d.compute(a.points, b.points) <= 0.005
            for i, a in enumerate(trajs)
            for b in trajs[i + 1 :]
        )
        assert found

    def test_worldwide_is_sparse(self):
        """Worldwide data spans a huge extent so most pairs are dissimilar."""
        ds = worldwide_dataset(30, seed=4)
        firsts = ds.first_points()
        spread = np.max(firsts, axis=0) - np.min(firsts, axis=0)
        assert np.all(spread > 1.0)

    def test_named_presets(self):
        b = beijing_like(25)
        c = chengdu_like(25)
        o = osm_like(25)
        assert dataset_stats(c).avg_len > dataset_stats(b).avg_len
        assert len(o) == 25


class TestSampleQueries:
    def test_counts_and_ids(self):
        ds = citywide_dataset(20, seed=0)
        qs = sample_queries(ds, 5, seed=1)
        assert len(qs) == 5
        assert all(q.traj_id < 0 for q in qs)

    def test_deterministic(self):
        ds = citywide_dataset(20, seed=0)
        a = sample_queries(ds, 3, seed=2)
        b = sample_queries(ds, 3, seed=2)
        for x, y in zip(a, b):
            assert np.array_equal(x.points, y.points)

    def test_perturbation(self):
        ds = citywide_dataset(20, seed=0)
        q = sample_queries(ds, 1, seed=3, perturb=0.01)[0]
        # the perturbed query should not exactly equal any dataset member
        assert all(not np.array_equal(q.points, t.points) for t in ds)

    def test_validation(self):
        ds = citywide_dataset(5, seed=0)
        with pytest.raises(ValueError):
            sample_queries(ds, 0)
        from repro.trajectory import TrajectoryDataset

        with pytest.raises(ValueError):
            sample_queries(TrajectoryDataset([]), 1)
