"""Tests for the kNN classifier and the GeoLife PLT loader."""

import numpy as np
import pytest

from repro import DITAConfig
from repro.analytics import KNNTrajectoryClassifier
from repro.datagen import citywide_dataset
from repro.trajectory import Trajectory, load_plt, load_plt_directory


@pytest.fixture(scope="module")
def labelled():
    """Two classes of trips from two disjoint sub-cities."""
    a = citywide_dataset(40, seed=11, duplication=4)
    b = citywide_dataset(40, seed=12, duplication=4)
    trajs, labels = [], []
    for t in a:
        trajs.append(Trajectory(t.traj_id, t.points))
        labels.append("north")
    for t in b:
        trajs.append(Trajectory(1000 + t.traj_id, t.points + 1.0))  # shift away
        labels.append("south")
    return trajs, labels


@pytest.fixture(scope="module")
def clf(labelled):
    trajs, labels = labelled
    cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
    return KNNTrajectoryClassifier(k=3, config=cfg).fit(trajs, labels)


class TestClassifier:
    def test_training_points_classified_correctly(self, clf, labelled):
        trajs, labels = labelled
        assert clf.score(trajs[:10], labels[:10]) == 1.0
        assert clf.score(trajs[-10:], labels[-10:]) == 1.0

    def test_perturbed_queries(self, clf, labelled):
        trajs, labels = labelled
        rng = np.random.default_rng(5)
        queries = [Trajectory(-1, t.points + rng.normal(0, 1e-5, t.points.shape)) for t in trajs[:5]]
        assert clf.predict_many(queries) == labels[:5]

    def test_predict_proba_sums_to_one(self, clf, labelled):
        trajs, _ = labelled
        proba = clf.predict_proba(trajs[0])
        assert sum(proba.values()) == pytest.approx(1.0)
        assert proba["north"] > 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNNTrajectoryClassifier().predict(Trajectory(0, [(0, 0)]))

    def test_validation(self, labelled):
        trajs, labels = labelled
        with pytest.raises(ValueError):
            KNNTrajectoryClassifier(k=0)
        with pytest.raises(ValueError):
            KNNTrajectoryClassifier().fit(trajs, labels[:-1])
        with pytest.raises(ValueError):
            KNNTrajectoryClassifier().fit([], [])


PLT_HEADER = (
    "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
    "0,2,255,My Track,0,0,2,8421376\n0\n"
)


def _write_plt(path, rows):
    path.write_text(PLT_HEADER + "".join(rows))


class TestPLTLoader:
    def test_load_single_file(self, tmp_path):
        f = tmp_path / "a.plt"
        _write_plt(f, [
            "39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59\n",
            "39.906700,116.385600,0,492,39745.1,2008-10-24,02:10:04\n",
        ])
        t = load_plt(f, traj_id=9)
        assert t.traj_id == 9
        assert len(t) == 2
        assert t.points[0].tolist() == [39.906631, 116.385564]

    def test_malformed_rows_skipped(self, tmp_path):
        f = tmp_path / "b.plt"
        _write_plt(f, [
            "39.9,116.3,0,492,39745.1,2008-10-24,02:09:59\n",
            "garbage line\n",
            "not,a-number,0,0,0,x,y\n",
            "40.0,116.4,0,492,39745.1,2008-10-24,02:10:04\n",
        ])
        assert len(load_plt(f)) == 2

    def test_empty_file_rejected(self, tmp_path):
        f = tmp_path / "c.plt"
        f.write_text(PLT_HEADER)
        with pytest.raises(ValueError):
            load_plt(f)

    def test_max_points(self, tmp_path):
        f = tmp_path / "d.plt"
        _write_plt(f, [f"39.{i},116.{i},0,0,0,d,t\n" for i in range(10)])
        assert len(load_plt(f, max_points=4)) == 4

    def test_directory_walk(self, tmp_path):
        (tmp_path / "u1").mkdir()
        (tmp_path / "u2").mkdir()
        _write_plt(tmp_path / "u1" / "a.plt", ["39.1,116.1,0,0,0,d,t\n", "39.2,116.2,0,0,0,d,t\n"])
        _write_plt(tmp_path / "u2" / "b.plt", ["40.1,117.1,0,0,0,d,t\n", "40.2,117.2,0,0,0,d,t\n"])
        _write_plt(tmp_path / "u2" / "tiny.plt", ["40.1,117.1,0,0,0,d,t\n"])  # below min
        ds = load_plt_directory(tmp_path)
        assert len(ds) == 2
        assert ds.ids == [0, 1]

    def test_directory_limits(self, tmp_path):
        for i in range(5):
            _write_plt(tmp_path / f"{i}.plt", ["39.1,116.1,0,0,0,d,t\n", "39.2,116.2,0,0,0,d,t\n"])
        ds = load_plt_directory(tmp_path, max_trajectories=3)
        assert len(ds) == 3

    def test_feeds_engine(self, tmp_path):
        from repro import DITAConfig, DITAEngine

        for i in range(6):
            _write_plt(
                tmp_path / f"{i}.plt",
                [f"39.{100 + i + j},116.{100 + i + j},0,0,0,d,t\n" for j in range(5)],
            )
        ds = load_plt_directory(tmp_path)
        engine = DITAEngine(ds, DITAConfig(num_global_partitions=1, num_pivots=2))
        assert engine.search_ids(ds[0], 0.0) == [0]
