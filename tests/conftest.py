"""Shared fixtures: the paper's worked example trajectories and small
synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DITAConfig
from repro.datagen import beijing_like, citywide_dataset, random_walk_dataset
from repro.trajectory import Trajectory, TrajectoryDataset


@pytest.fixture(scope="session")
def paper_trajectories():
    """The five example trajectories of the paper's Figure 1."""
    return {
        1: Trajectory(1, [(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)]),
        2: Trajectory(2, [(0, 1), (0, 2), (4, 2), (4, 4), (4, 5), (5, 5)]),
        3: Trajectory(3, [(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)]),
        4: Trajectory(4, [(0, 4), (0, 5), (3, 3), (3, 7), (7, 5)]),
        5: Trajectory(5, [(0, 4), (0, 5), (3, 7), (3, 3), (7, 5)]),
    }


@pytest.fixture(scope="session")
def paper_dataset(paper_trajectories):
    return TrajectoryDataset(paper_trajectories.values())


@pytest.fixture(scope="session")
def small_city():
    """A small citywide dataset with route families (matches exist at the
    paper's tau range)."""
    return beijing_like(120, seed=42)


@pytest.fixture(scope="session")
def tiny_walks():
    """Tiny random walks for index structural tests."""
    return random_walk_dataset(40, avg_len=12, seed=3)


@pytest.fixture(scope="session")
def small_config():
    """Index parameters scaled for ~100-trajectory fixtures."""
    return DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)


def brute_force_search(dataset, distance, query, tau):
    """Reference implementation shared by correctness tests."""
    return sorted(
        t.traj_id for t in dataset if distance.compute(t.points, query.points) <= tau
    )


def brute_force_join(left, right, distance, tau):
    return sorted(
        (a.traj_id, b.traj_id)
        for a in left
        for b in right
        if distance.compute(a.points, b.points) <= tau
    )
