"""Serving-layer tests: the serial-twin byte-identity harness, cache
invalidation across every mutation path, admission, fairness, and
determinism.

The central contract (ISSUE 10): every request the serving layer admits
must produce an answer byte-identical — results *and* stats — to a
serial execution of the same requests in the serving layer's dispatch
order at the same logical snapshot.  The harness replays each run
against a twin engine and compares canonical results plus a numeric
fingerprint of the stats dataclasses.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine
from repro.core.join import JoinStats
from repro.core.knn import knn_search
from repro.core.search import SearchStats
from repro.datagen import beijing_like
from repro.obs import LatencyHistogram
from repro.serving import (
    AdmissionController,
    FairQueue,
    QueueFullError,
    RateLimitedError,
    Request,
    ResultCache,
    ServingLayer,
    TokenBucket,
    canonical_result,
    closed_loop,
    open_loop,
    snapshot_footprint,
)
from repro.serving.workload import RequestSampler
from repro.sql.session import DITASession
from repro.trajectory import Trajectory

ADAPTERS = ["dtw", "frechet", "hausdorff", "edr", "lcss", "erp"]


def make_config(**kw):
    base = dict(
        num_global_partitions=2,
        trie_fanout=4,
        num_pivots=3,
        trie_leaf_capacity=4,
        delta_max_rows=10_000,
    )
    base.update(kw)
    return DITAConfig(**base)


def stats_fingerprint(stats):
    """Numeric-field fingerprint of a (possibly nested) stats dataclass —
    the byte-identity comparison for instrumentation (non-numeric fields
    like join plans are execution artifacts, not part of the answer)."""
    if stats is None:
        return None
    out = {}
    for f in dataclasses.fields(stats):
        v = getattr(stats, f.name)
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            out[f.name] = repr(v) if isinstance(v, float) else v
        elif dataclasses.is_dataclass(v):
            out[f.name] = stats_fingerprint(v)
    return out


def serial_execute(twin, req, twin_session=None):
    """Run one request serially against the twin; mirrors the serving
    layer's execution without caches, admission or scheduling."""
    p = req.payload
    if req.kind == "search":
        stats = SearchStats()
        return canonical_result("search", twin.search(p["query"], p["tau"], stats=stats)), stats
    if req.kind == "knn":
        return canonical_result("knn", knn_search(twin, p["query"], p["k"])), None
    if req.kind == "join":
        stats = JoinStats()
        return canonical_result("join", twin.join(p.get("other", twin), p["tau"], stats=stats)), stats
    if req.kind == "sql":
        rows = twin_session.sql(p["text"], params=p.get("params"))
        return canonical_result("sql", rows), None
    if req.kind == "append":
        return twin.append_trajectory(p["traj_id"], p["points"]), None
    if req.kind == "extend":
        twin.extend_trajectory(p["traj_id"], p["points"])
        return True, None
    if req.kind == "remove":
        return twin.remove_trajectory(p["traj_id"]), None
    if req.kind == "merge":
        return (twin.merge() if twin.generations is not None else twin.flush_deltas()), None
    if req.kind == "repartition":
        return twin.repartition(), None
    raise AssertionError(req.kind)


def assert_byte_identical_to_serial(outcomes, twin, twin_session=None):
    """Replay the dispatch order serially on the twin and compare."""
    ok = sorted(
        (o for o in outcomes if o.status == "ok"), key=lambda o: o.dispatch_seq
    )
    assert ok, "workload produced no successful outcomes"
    for o in ok:
        want_value, want_stats = serial_execute(twin, o.request, twin_session)
        assert o.result == want_value, (
            f"req {o.request.req_id} ({o.request.kind}, cached={o.cached}) "
            f"diverged from serial execution"
        )
        assert stats_fingerprint(o.stats) == stats_fingerprint(want_stats), (
            f"req {o.request.req_id} ({o.request.kind}, cached={o.cached}) "
            f"stats diverged from serial execution"
        )


def build_workload(data, seed, n_per_tenant, tenants=3, mix=None, sql_table=None):
    kwargs = {"sql_table": sql_table}
    if mix is not None:
        kwargs["mix"] = mix
    return open_loop(
        data,
        [f"t{i}" for i in range(tenants)],
        n_per_tenant=n_per_tenant,
        rate_per_tenant=64.0,
        seed=seed,
        **kwargs,
    )


# --------------------------------------------------------------------- #
# the serial-twin byte-identity harness
# --------------------------------------------------------------------- #


class TestByteIdenticalToSerial:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000))
    def test_interleaved_mixed_workload_dtw(self, seed):
        """Hypothesis interleaving harness: random mixed workloads —
        queries racing streamed mutations — answer exactly like a serial
        run at each request's dispatch snapshot."""
        data = beijing_like(60, seed=17)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        session = DITASession(cfg)
        session.register("taxi", data)
        session.catalog.get("taxi").engine = engine
        twin = DITAEngine(data, cfg)
        twin_session = DITASession(cfg)
        twin_session.register("taxi", data)
        twin_session.catalog.get("taxi").engine = twin

        mix = (
            ("search", 0.45),
            ("knn", 0.15),
            ("sql", 0.10),
            ("append", 0.12),
            ("extend", 0.08),
            ("remove", 0.10),
        )
        reqs = build_workload(data, seed, n_per_tenant=7, mix=mix, sql_table="taxi")
        layer = ServingLayer(engine, session=session, config=cfg)
        outcomes = layer.run(reqs)
        assert all(o.status == "ok" for o in outcomes)
        assert_byte_identical_to_serial(outcomes, twin, twin_session)

    @pytest.mark.parametrize("distance", ADAPTERS)
    def test_all_adapters(self, distance):
        data = beijing_like(50, seed=23)
        cfg = make_config()
        engine = DITAEngine(data, cfg, distance=distance)
        twin = DITAEngine(data, cfg, distance=distance)
        mix = (
            ("search", 0.5),
            ("knn", 0.2),
            ("append", 0.15),
            ("remove", 0.15),
        )
        reqs = build_workload(data, seed=5, n_per_tenant=6, mix=mix)
        layer = ServingLayer(engine, config=cfg)
        outcomes = layer.run(reqs)
        assert all(o.status == "ok" for o in outcomes)
        assert_byte_identical_to_serial(outcomes, twin)

    @pytest.mark.parametrize("backend", ["simulated", "process"])
    def test_both_backends(self, backend):
        data = beijing_like(40, seed=29)
        cfg = make_config(backend=backend, num_processes=2)
        engine = DITAEngine(data, cfg)
        # the twin runs simulated: the process backend's contract is
        # bit-identity with the simulated one, so this also re-checks it
        twin = DITAEngine(data, make_config())
        mix = (("search", 0.6), ("knn", 0.2), ("append", 0.2))
        reqs = build_workload(data, seed=11, n_per_tenant=4, tenants=2, mix=mix)
        layer = ServingLayer(engine, config=cfg)
        try:
            outcomes = layer.run(reqs)
            assert all(o.status == "ok" for o in outcomes)
            assert_byte_identical_to_serial(outcomes, twin)
        finally:
            engine.shutdown()

    def test_join_requests(self):
        data = beijing_like(30, seed=31)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        twin = DITAEngine(data, cfg)
        reqs = [
            Request(req_id=0, tenant="a", kind="join", payload={"tau": 0.004}, arrival=0.0),
            Request(req_id=1, tenant="b", kind="join", payload={"tau": 0.004}, arrival=0.01),
        ]
        layer = ServingLayer(engine, config=cfg)
        outcomes = layer.run(reqs)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert outcomes[1].cached  # identical self-join: second one hits
        assert_byte_identical_to_serial(outcomes, twin)


# --------------------------------------------------------------------- #
# cache invalidation across every mutation path
# --------------------------------------------------------------------- #


def _query_for_partition(engine, data, tau):
    """(query, relevant pids) pairs with small, distinct footprints."""
    found = {}
    for t in data:
        q = Trajectory(-1, t.points + 1e-6)
        pids = tuple(engine.global_index.relevant_partitions(q.points, tau, engine.adapter))
        if pids and pids not in found:
            found[pids] = q
    return found


class TestCacheInvalidation:
    TAU = 0.0015

    def _layer(self):
        data = beijing_like(80, seed=41)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        engine_twin = DITAEngine(data, cfg)
        return ServingLayer(engine, config=cfg), engine, engine_twin, list(data)

    def _serve(self, layer, reqs):
        return layer.run(reqs)

    def _search_req(self, rid, q, arrival):
        return Request(
            req_id=rid, tenant="t0", kind="search",
            payload={"query": q, "tau": self.TAU}, arrival=arrival,
        )

    @pytest.mark.parametrize("path", ["append", "extend", "remove", "merge", "repartition"])
    def test_mutation_invalidates_affected_entry(self, path, tmp_path):
        layer, engine, twin, data = self._layer()
        if path == "merge":
            engine.attach_generations(tmp_path / "gens")
            twin.attach_generations(tmp_path / "gens_twin")
        q = Trajectory(-1, data[0].points + 1e-6)
        # warm the cache, then prove the hit
        o1, o2 = layer.run(
            [self._search_req(0, q, 0.0), self._search_req(1, q, 10.0)]
        )
        assert o1.status == o2.status == "ok"
        assert not o1.cached and o2.cached

        target = data[0].traj_id
        if path == "append":
            payload = {"traj_id": 999_001, "points": data[0].points + 2e-6}
        elif path == "extend":
            payload = {"traj_id": target, "points": data[0].points[-1:] + 1e-6}
        elif path == "remove":
            payload = {"traj_id": target}
        else:
            payload = {}
        mut = Request(req_id=2, tenant="t0", kind=path, payload=payload, arrival=20.0)
        o3 = layer.run([mut])[0]
        assert o3.status == "ok", o3.error
        if path == "repartition" and o3.result is False:
            pytest.skip("no skew: repartition declined (covered by merge path)")

        # the same query must now re-execute — and agree with a serial twin
        o4 = layer.run([self._search_req(3, q, 30.0)])[0]
        assert o4.status == "ok"
        assert not o4.cached
        assert layer.result_cache.stats.invalidations >= 1
        serial_execute(twin, mut)
        assert_byte_identical_to_serial([o4], twin)

    def test_mutation_elsewhere_keeps_entry(self):
        """Partition-exactness: a buffered write routed to a partition
        outside an entry's footprint must not invalidate it."""
        layer, engine, _twin, data = self._layer()
        by_pids = _query_for_partition(engine, data, self.TAU)
        assert len(by_pids) >= 2, "need two disjoint footprints"
        pids_a = q_a = pids_b = q_b = None
        items = sorted(by_pids.items())
        for pa, qa in items:
            for pb, qb in items:
                if not set(pa) & set(pb):
                    pids_a, q_a, pids_b, q_b = pa, qa, pb, qb
                    break
            if pids_a is not None:
                break
        assert pids_a is not None, "no disjoint partition footprints found"
        # warm both entries
        layer.run([self._search_req(0, q_a, 0.0), self._search_req(1, q_b, 1.0)])
        # a write that lands only in one of q_b's partitions
        donor = next(
            t for t in data
            if engine.global_index.relevant_partitions(t.points, self.TAU, engine.adapter)
            and set(
                engine.global_index.relevant_partitions(t.points, self.TAU, engine.adapter)
            ) <= set(pids_b)
        )
        mut = Request(
            req_id=2, tenant="t0", kind="append",
            payload={"traj_id": 999_002, "points": donor.points + 1e-6}, arrival=2.0,
        )
        assert layer.run([mut])[0].status == "ok"
        o_a = layer.run([self._search_req(3, q_a, 3.0)])[0]
        o_b = layer.run([self._search_req(4, q_b, 4.0)])[0]
        assert o_a.cached, "entry with untouched footprint must survive"
        assert not o_b.cached, "entry whose partition mutated must die"

    def test_result_cache_footprint_api(self):
        """Direct cache-level check of the footprint contract."""
        data = beijing_like(40, seed=43)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        cache = ResultCache(1 << 20)
        engine.sync_for_read()
        fp = snapshot_footprint(engine)
        cache.put(("k",), "value", None, fp, 100)
        assert cache.get(("k",), engine) == ("value", None)
        engine.append_trajectory(888_001, data[0].points + 1e-5)
        assert cache.get(("k",), engine) is None  # buffered write already kills it
        assert cache.stats.invalidations == 1

    def test_cache_disabled_by_zero_budget(self):
        data = beijing_like(30, seed=47)
        cfg = make_config(result_cache_bytes=0)
        layer = ServingLayer(DITAEngine(data, cfg), config=cfg)
        q = Trajectory(-1, data[0].points + 1e-6)
        o1, o2 = layer.run(
            [self._search_req(0, q, 0.0), self._search_req(1, q, 1.0)]
        )
        assert not o1.cached and not o2.cached


# --------------------------------------------------------------------- #
# admission, fairness, components
# --------------------------------------------------------------------- #


class TestAdmission:
    def test_token_bucket_refills_on_simulated_clock(self):
        b = TokenBucket(rate=2.0, burst=2.0)
        assert b.try_take(0.0) and b.try_take(0.0)
        assert not b.try_take(0.0)
        assert b.try_take(0.5)  # 0.5s * 2/s = 1 token
        assert not b.try_take(0.5)

    def test_rate_limited_error(self):
        cfg = make_config(tenant_rate=1.0, tenant_burst=1.0)
        ac = AdmissionController(cfg)
        ac.admit("a", 0.0)
        with pytest.raises(RateLimitedError):
            ac.admit("a", 0.0)
        ac.admit("b", 0.0)  # independent bucket

    def test_queue_depth_shedding(self):
        cfg = make_config(tenant_rate=1000.0, tenant_burst=100.0, serving_queue_depth=2)
        ac = AdmissionController(cfg)
        ac.admit("a", 0.0)
        ac.admit("a", 0.0)
        with pytest.raises(QueueFullError) as exc:
            ac.admit("a", 0.0)
        assert exc.value.which == "tenant queue"

    def test_global_inflight_ceiling(self):
        cfg = make_config(
            tenant_rate=1000.0, tenant_burst=100.0, max_inflight=2, serving_queue_depth=10
        )
        ac = AdmissionController(cfg)
        ac.admit("a", 0.0)
        ac.admit("b", 0.0)
        with pytest.raises(QueueFullError) as exc:
            ac.admit("c", 0.0)
        assert exc.value.which == "max_inflight"
        ac.note_dispatch("a")
        ac.release("a")
        ac.admit("c", 0.0)

    def test_shed_outcomes_are_typed(self):
        data = beijing_like(30, seed=53)
        cfg = make_config(tenant_rate=1.0, tenant_burst=1.0)
        layer = ServingLayer(DITAEngine(data, cfg), config=cfg)
        q = Trajectory(-1, data[0].points + 1e-6)
        reqs = [
            Request(req_id=i, tenant="t0", kind="search",
                    payload={"query": q, "tau": 0.002}, arrival=0.0)
            for i in range(3)
        ]
        outcomes = layer.run(reqs)
        statuses = [o.status for o in outcomes]
        assert statuses.count("shed") == 2
        shed = [o for o in outcomes if o.status == "shed"]
        assert all("RateLimitedError" in o.error for o in shed)
        assert int(layer.metrics.value("serve.shed")) == 2


class TestFairQueue:
    def test_weighted_share(self):
        q = FairQueue()
        q.set_weight("heavy", 4.0)
        q.set_weight("light", 1.0)
        for i in range(8):
            q.push("heavy", f"h{i}", 1.0)
        for i in range(2):
            q.push("light", f"l{i}", 1.0)
        order = [q.pop()[0] for _ in range(10)]
        # within the first 5 pops, light (weight 1, 2 items) must not be
        # fully starved by heavy's backlog
        assert "light" in order[:5]
        # heavy's 4x weight gives it ~4 of the first 5 slots
        assert order[:5].count("heavy") >= 3

    def test_deterministic_ties(self):
        a, b = FairQueue(), FairQueue()
        for q in (a, b):
            q.push("x", 1, 1.0)
            q.push("y", 2, 1.0)
            q.push("x", 3, 1.0)
        assert [a.pop() for _ in range(3)] == [b.pop() for _ in range(3)]


class TestLatencyHistogram:
    def test_percentiles_exact(self):
        h = LatencyHistogram()
        for v in [5.0, 1.0, 2.0, 4.0, 3.0]:
            h.record(v)
        assert h.percentile(50) == 3.0
        assert h.percentile(99) == 5.0
        assert h.percentile(0) == 1.0
        assert h.count == 5

    def test_empty(self):
        h = LatencyHistogram()
        assert h.percentile(99) == 0.0
        assert h.summary()["count"] == 0

    def test_summary_idempotent_to_the_ulp(self):
        # percentile() sorts the sample list in place; the mean must not
        # change (even in the last ULP) because the addition order did
        h = LatencyHistogram()
        for v in [0.051, 1.982, 0.013, 0.7, 0.01200000000000005]:
            h.record(v)
        first = h.summary()
        assert h.summary() == first
        assert h.summary() == first


# --------------------------------------------------------------------- #
# scheduling, determinism, throughput
# --------------------------------------------------------------------- #


class TestServingBehaviour:
    def test_deterministic_summaries(self):
        data = beijing_like(50, seed=59)
        cfg = make_config()

        def run_once():
            engine = DITAEngine(data, cfg)
            layer = ServingLayer(engine, config=cfg)
            reqs = build_workload(data, seed=7, n_per_tenant=6)
            layer.run(reqs)
            return json.dumps(layer.summary(), sort_keys=True)

        assert run_once() == run_once()

    def test_concurrency_beats_serial(self):
        data = beijing_like(60, seed=61)
        cfg = make_config()
        tenants = [f"t{i}" for i in range(8)]
        mix = (("search", 0.8), ("knn", 0.2))

        def makespan(serial):
            engine = DITAEngine(data, cfg)
            layer = ServingLayer(engine, config=cfg, serial=serial)
            layer.run_closed_loop(
                closed_loop(data, tenants, seed=3, mix=mix), n_per_tenant=5
            )
            return layer.scheduler.makespan

        speedup = makespan(True) / makespan(False)
        assert speedup >= 2.0, f"speedup {speedup:.2f} < 2x over serial admission"

    def test_cost_model_learns_per_partition(self):
        data = beijing_like(60, seed=67)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        layer = ServingLayer(engine, config=cfg)
        reqs = build_workload(data, seed=13, n_per_tenant=8)
        layer.run(reqs)
        model = layer.scheduler.model
        assert model._by_kind.get("search") is not None
        assert any(k[0] == "search" for k in model._by_kind_pid)

    def test_per_tenant_latency_recorded(self):
        data = beijing_like(40, seed=71)
        cfg = make_config()
        layer = ServingLayer(DITAEngine(data, cfg), config=cfg)
        reqs = build_workload(data, seed=3, n_per_tenant=4, tenants=2)
        layer.run(reqs)
        assert layer.latency.keys() == ["t0", "t1"]
        for t in layer.latency.keys():
            assert layer.latency.histogram(t).count == 4

    def test_charge_reaches_cluster_makespan(self):
        data = beijing_like(40, seed=73)
        cfg = make_config()
        engine = DITAEngine(data, cfg)
        layer = ServingLayer(engine, config=cfg)
        layer.run(build_workload(data, seed=3, n_per_tenant=3, tenants=2))
        rep = engine.cluster.report()
        assert rep.makespan > 0
        assert float(layer.metrics.value("serve.scheduler.charged_s")) > 0
