"""Smoke tests: the example scripts run end to end.

Each example asserts its own correctness internally where it matters (the
streaming example checks exactness against brute force; fleet analytics
asserts the injected anomalies are found), so a clean exit is meaningful.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script, marker",
    [
        ("quickstart.py", "self-join"),
        ("sql_analytics.py", "TRA-JOIN"),
        ("streaming_updates.py", "restored engine answers identically"),
    ],
)
def test_example_runs(script, marker):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout
