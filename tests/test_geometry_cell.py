"""Unit and property tests for cell compression (Lemma 5.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.dtw import dtw
from repro.distances.frechet import frechet
from repro.geometry.cell import (
    Cell,
    CellSet,
    cell_lower_bound,
    cell_lower_bound_max,
    compress,
    symmetric_cell_lower_bound,
)

coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, max_len=10):
    n = draw(st.integers(1, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


class TestCompress:
    def test_single_point(self):
        cells = compress(np.array([(1.0, 1.0)]), side=2.0)
        assert len(cells) == 1
        assert cells[0].count == 1
        assert cells[0].center == (1.0, 1.0)

    def test_paper_example_5_7(self):
        """Example 5.7: T1 compresses to [t1,2; t3,1; t4,3] with D=2."""
        t1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
        cells = compress(t1, side=2.0)
        assert [(c.center, c.count) for c in cells] == [
            ((1.0, 1.0), 2),
            ((3.0, 2.0), 1),
            ((4.0, 4.0), 3),
        ]

    def test_counts_sum_to_points(self):
        pts = np.random.default_rng(0).uniform(0, 10, size=(30, 2))
        cells = compress(pts, side=1.5)
        assert sum(c.count for c in cells) == 30

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            compress(np.array([(0.0, 0.0)]), side=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compress(np.empty((0, 2)), side=1.0)

    @given(trajectories())
    def test_every_point_in_some_cell(self, pts):
        cells = compress(pts, side=1.0)
        for p in pts:
            assert any(c.contains(p) for c in cells)


class TestCellSet:
    def test_from_points_roundtrip(self):
        pts = np.array([(0, 0), (0.1, 0.1), (5, 5)], float)
        cs = CellSet.from_points(pts, side=1.0)
        assert len(cs) == 2
        assert cs.n_points == 3

    def test_min_dist_matrix_shape_and_overlap(self):
        a = CellSet.from_points(np.array([(0, 0)], float), 1.0)
        b = CellSet.from_points(np.array([(0.2, 0.2), (10, 10)], float), 1.0)
        m = a.min_dist_matrix(b)
        assert m.shape == (1, 2)
        assert m[0, 0] == 0.0
        assert m[0, 1] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CellSet(np.zeros((0, 2)), np.zeros(0), 1.0)
        with pytest.raises(ValueError):
            CellSet(np.zeros((1, 2)), np.zeros(1), -1.0)

    def test_cells_view_matches(self):
        pts = np.array([(0, 0), (3, 3)], float)
        cs = CellSet.from_points(pts, 1.0)
        cells = cs.cells()
        assert [c.count for c in cells] == [1, 1]
        assert isinstance(cells[0], Cell)


class TestCellBound:
    def test_paper_example_5_7_value(self):
        """Example 5.7: Cell(Q, T1) = 4 with D=2."""
        t1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
        q = np.array(
            [(1, 1), (1, 5), (1, 4), (2, 4), (2, 5), (4, 4), (5, 6), (5, 5)], float
        )
        ct = CellSet.from_points(t1, 2.0)
        cq = CellSet.from_points(q, 2.0)
        assert cell_lower_bound(cq, ct) == pytest.approx(4.0)

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_lower_bounds_dtw(self, t, q):
        """Lemma 5.6: Cell(T, Q) <= DTW(T, Q) in both directions."""
        ct = CellSet.from_points(t, 1.0)
        cq = CellSet.from_points(q, 1.0)
        d = dtw(t, q)
        assert cell_lower_bound(ct, cq) <= d + 1e-6
        assert cell_lower_bound(cq, ct) <= d + 1e-6
        assert symmetric_cell_lower_bound(ct, cq) <= d + 1e-6

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_max_variant_lower_bounds_frechet(self, t, q):
        ct = CellSet.from_points(t, 1.0)
        cq = CellSet.from_points(q, 1.0)
        f = frechet(t, q)
        assert cell_lower_bound_max(ct, cq) <= f + 1e-6
        assert cell_lower_bound_max(cq, ct) <= f + 1e-6

    def test_identical_trajectories_zero(self):
        pts = np.array([(0, 0), (1, 1), (2, 2)], float)
        cs = CellSet.from_points(pts, 1.0)
        assert symmetric_cell_lower_bound(cs, cs) == 0.0
