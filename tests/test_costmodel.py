"""Unit tests for the bi-graph cost model (Section 6.2-6.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import (
    BiEdge,
    divide_partitions,
    orient_edges,
    plan_join,
)


def _edge(t, q, ttq=1.0, ctq=1.0, tqt=1.0, cqt=1.0):
    return BiEdge(t_part=t, q_part=q, trans_tq=ttq, comp_tq=ctq, trans_qt=tqt, comp_qt=cqt)


@st.composite
def edge_lists(draw):
    n_t = draw(st.integers(1, 4))
    n_q = draw(st.integers(1, 4))
    weights = st.floats(0, 100, allow_nan=False, allow_infinity=False)
    edges = []
    for i in range(n_t):
        for j in range(n_q):
            if draw(st.booleans()):
                edges.append(
                    _edge(i, j, draw(weights), draw(weights), draw(weights), draw(weights))
                )
    return edges


class TestBiEdge:
    def test_cost_into_directions(self):
        e = _edge(0, 0, ttq=10, ctq=3, tqt=7, cqt=5)
        lam = 2.0
        e.direction = "tq"
        assert e.cost_into(("T", 0), lam) == 20  # sender pays lambda * trans
        assert e.cost_into(("Q", 0), lam) == 3   # receiver pays comp
        e.direction = "qt"
        assert e.cost_into(("Q", 0), lam) == 14
        assert e.cost_into(("T", 0), lam) == 5


class TestOrientation:
    def test_initial_direction_prefers_cheaper(self):
        e = _edge(0, 0, ttq=1, ctq=1, tqt=100, cqt=100)
        orient_edges([e], lam=1.0)
        assert e.direction == "tq"

    def test_balances_hot_node(self):
        """A node flooded by naive orientation gets relief via flips."""
        # all edges initially point into Q0 (comp_tq huge on Q side? build
        # a star where tq is slightly cheaper individually but overloads Q0)
        edges = [_edge(i, 0, ttq=1, ctq=10, tqt=1.5, cqt=10) for i in range(6)]
        costs = orient_edges(edges, lam=1.0)
        tc = max(costs.values())
        # naive all-tq would give Q0 a comp of 60; the greedy must do better
        assert tc < 60

    def test_empty_edges(self):
        assert orient_edges([], lam=1.0) == {}

    @settings(max_examples=60)
    @given(edge_lists(), st.floats(0.01, 10))
    def test_never_worse_than_initial(self, edges, lam):
        """Greedy flips only ever reduce TC_global."""
        import copy

        initial = copy.deepcopy(edges)
        for e in initial:
            cost_tq = lam * e.trans_tq + e.comp_tq
            cost_qt = lam * e.trans_qt + e.comp_qt
            e.direction = "tq" if cost_tq <= cost_qt else "qt"
        from repro.core.costmodel import _node_costs

        initial_tc = max(_node_costs(initial, lam).values()) if initial else 0.0
        costs = orient_edges(edges, lam=lam)
        final_tc = max(costs.values()) if costs else 0.0
        assert final_tc <= initial_tc + 1e-9

    @settings(max_examples=60)
    @given(edge_lists(), st.floats(0.01, 10))
    def test_costs_consistent_with_directions(self, edges, lam):
        from repro.core.costmodel import _node_costs

        costs = orient_edges(edges, lam=lam)
        fresh = _node_costs(edges, lam)
        assert set(costs) == set(fresh)
        for node in fresh:
            assert costs[node] == pytest.approx(fresh[node], abs=1e-6)


class TestDivision:
    def test_no_replication_when_balanced(self):
        costs = {("T", i): 10.0 for i in range(10)}
        replicas = divide_partitions(costs, 0.98)
        assert all(r == 1 for r in replicas.values())

    def test_heavy_partition_replicated(self):
        costs = {("T", i): 1.0 for i in range(49)}
        costs[("T", 99)] = 50.0
        replicas = divide_partitions(costs, 0.98)
        assert replicas[("T", 99)] > 1
        assert all(replicas[("T", i)] == 1 for i in range(49))

    def test_replica_count_formula(self):
        costs = {("T", 0): 1.0, ("T", 1): 1.0, ("T", 2): 10.0}
        replicas = divide_partitions(costs, 0.5)
        tc_q = 1.0  # median
        assert replicas[("T", 2)] == math.ceil(10.0 / tc_q)

    def test_empty(self):
        assert divide_partitions({}) == {}

    def test_zero_costs(self):
        replicas = divide_partitions({("T", 0): 0.0, ("Q", 0): 0.0})
        assert all(r == 1 for r in replicas.values())


class TestPlanJoin:
    def test_full_pipeline(self):
        edges = [_edge(0, 0, 5, 5, 1, 1), _edge(0, 1, 2, 2, 9, 9)]
        plan = plan_join(edges, lam=1.0)
        assert plan.tc_global > 0
        assert set(plan.replicas) == set(plan.total_costs)

    def test_orientation_toggle(self):
        edges = [_edge(0, 0, ttq=1, ctq=1, tqt=100, cqt=100)]
        plan = plan_join(edges, lam=1.0, use_orientation=False)
        assert edges[0].direction == "tq"  # forced default

    def test_division_toggle(self):
        edges = [_edge(0, 0)]
        plan = plan_join(edges, lam=1.0, use_division=False)
        assert plan.replicas == {}
        assert plan.replica_count(("T", 0)) == 1


class TestOrientationEquivalence:
    """The top-k-maintenance rewrite of ``orient_edges`` must reproduce the
    O(V)-rescan reference implementation decision for decision."""

    @settings(max_examples=120)
    @given(edge_lists(), st.floats(0.01, 10))
    def test_matches_reference_bit_for_bit(self, edges, lam):
        import copy

        from repro.core.costmodel import _orient_edges_reference

        a = copy.deepcopy(edges)
        b = copy.deepcopy(edges)
        costs_new = orient_edges(a, lam=lam)
        costs_ref = _orient_edges_reference(b, lam=lam)
        assert [e.direction for e in a] == [e.direction for e in b]
        assert costs_new == costs_ref  # float-exact, not approx

    def test_matches_reference_on_duplicate_costs(self):
        """Exact cost ties everywhere — the tie-break paths must agree."""
        import copy

        from repro.core.costmodel import _orient_edges_reference

        edges = [_edge(i, j) for i in range(3) for j in range(3)]
        a = copy.deepcopy(edges)
        b = copy.deepcopy(edges)
        assert orient_edges(a, lam=1.0) == _orient_edges_reference(b, lam=1.0)
        assert [e.direction for e in a] == [e.direction for e in b]
