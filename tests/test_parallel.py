"""Backend parity and failure-path coverage for the process-pool executor.

The contract under test: ``backend="process"`` is *observationally
identical* to the default simulated backend — bit-identical results and
merged ``SearchStats``/``JoinStats`` for search, batched search, kNN and
join across every distance adapter — while never moving a dataset
coordinate across the process boundary.  Plus the failure paths: a
crashed or unpicklable worker surfaces as a typed :class:`ExecutorError`
(never a raw multiprocessing traceback), lands in the cluster's
``FaultReport``, and the next call transparently respawns the pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine, TrajectoryStore, build_store
from repro.cluster.parallel import (
    ExecutorError,
    ParallelExecutor,
    SideInit,
    WorkerInit,
    schedule_makespan,
)
from repro.cluster.tasks import TaskSpec, pickle_budget, run_task_body
from repro.core.adapters import EDRAdapter, ERPAdapter, LCSSAdapter, get_adapter
from repro.core.join import JoinStats
from repro.core.knn import knn_search
from repro.core.search import SearchStats
from repro.datagen import beijing_like, sample_queries

# (name, adapter factory, search tau, join tau) — edit-distance adapters
# take integer edit budgets
ADAPTERS = [
    ("dtw", lambda: get_adapter("dtw"), 0.01, 0.002),
    ("frechet", lambda: get_adapter("frechet"), 0.008, 0.002),
    ("hausdorff", lambda: get_adapter("hausdorff"), 0.005, 0.001),
    ("edr", lambda: EDRAdapter(epsilon=0.0005), 3, 2),
    ("lcss", lambda: LCSSAdapter(epsilon=0.0005, delta=3), 3, 2),
    ("erp", lambda: ERPAdapter(ndim=2), 0.02, 0.005),
]
ADAPTER_IDS = [a[0] for a in ADAPTERS]

N_GROUPS = 3


def _config(backend, workers=2):
    return DITAConfig(
        num_global_partitions=N_GROUPS,
        trie_fanout=4,
        num_pivots=3,
        trie_leaf_capacity=4,
        backend=backend,
        num_processes=workers,
    )


@pytest.fixture(scope="module")
def data():
    return beijing_like(110, seed=7)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 4, seed=11, perturb=0.0002)


@pytest.fixture(scope="module")
def store_path(data, tmp_path_factory):
    path = tmp_path_factory.mktemp("parallel") / "store"
    build_store(data, path, n_groups=N_GROUPS)
    return path


@pytest.fixture(scope="module")
def engine_pairs(store_path):
    """Per-adapter (simulated, process) engine pairs over the same store,
    built lazily and pooled for the module (pool spawns are the expensive
    part)."""
    cache = {}

    def get(name):
        if name not in cache:
            factory = next(a[1] for a in ADAPTERS if a[0] == name)
            cache[name] = tuple(
                DITAEngine.from_store(
                    TrajectoryStore.open(store_path), _config(backend), factory()
                )
                for backend in ("simulated", "process")
            )
        return cache[name]

    yield get
    for sim, proc in cache.values():
        sim.shutdown()
        proc.shutdown()


def _ids_and_dists(matches):
    return [(t.traj_id, d) for t, d in matches]


class TestBackendParity:
    @pytest.mark.parametrize("name,factory,tau,join_tau", ADAPTERS, ids=ADAPTER_IDS)
    def test_search_parity(self, engine_pairs, queries, name, factory, tau, join_tau):
        sim, proc = engine_pairs(name)
        for q in queries:
            s_sim, s_proc = SearchStats(), SearchStats()
            got_sim = _ids_and_dists(sim.search(q, tau, stats=s_sim))
            got_proc = _ids_and_dists(proc.search(q, tau, stats=s_proc))
            assert got_sim == got_proc  # bit-identical, == on the floats
            assert s_sim == s_proc

    @pytest.mark.parametrize("name,factory,tau,join_tau", ADAPTERS, ids=ADAPTER_IDS)
    def test_search_batch_parity(self, engine_pairs, queries, name, factory, tau, join_tau):
        sim, proc = engine_pairs(name)
        taus = [tau] * len(queries)
        st_sim = [SearchStats() for _ in queries]
        st_proc = [SearchStats() for _ in queries]
        got_sim = sim.search_batch_rows(queries, taus, st_sim)
        got_proc = proc.search_batch_rows(queries, taus, st_proc)
        assert got_sim == got_proc
        assert st_sim == st_proc

    @pytest.mark.parametrize("name,factory,tau,join_tau", ADAPTERS, ids=ADAPTER_IDS)
    def test_knn_parity(self, engine_pairs, queries, name, factory, tau, join_tau):
        sim, proc = engine_pairs(name)
        got_sim = _ids_and_dists(knn_search(sim, queries[0], 5))
        got_proc = _ids_and_dists(knn_search(proc, queries[0], 5))
        assert got_sim == got_proc

    @pytest.mark.parametrize("name,factory,tau,join_tau", ADAPTERS, ids=ADAPTER_IDS)
    def test_join_parity(self, engine_pairs, name, factory, tau, join_tau):
        sim, proc = engine_pairs(name)
        js_sim, js_proc = JoinStats(), JoinStats()
        got_sim = sim.self_join(join_tau, stats=js_sim)
        got_proc = proc.self_join(join_tau, stats=js_proc)
        assert got_sim == got_proc
        for field in (
            "partition_pairs",
            "trajectories_shipped",
            "bytes_shipped",
            "candidate_pairs",
            "verified_pairs",
            "result_pairs",
        ):
            assert getattr(js_sim, field) == getattr(js_proc, field), field

    def test_materializations_parity(self, store_path, queries):
        """Coordinator-side view counts agree: the process backend adds no
        extra materializations (results come back as rows, and dataset
        coordinates never cross the pipe to begin with)."""
        engines = [
            DITAEngine.from_store(
                TrajectoryStore.open(store_path), _config(backend), "dtw"
            )
            for backend in ("simulated", "process")
        ]
        try:
            counts = []
            for e in engines:
                e.search(queries[0], 0.01)
                e.self_join(0.002)
                counts.append(
                    sum(e.partition(pid).materializations for pid in e.partition_pids())
                )
            assert counts[0] == counts[1]
        finally:
            for e in engines:
                e.shutdown()

    def test_pool_reused_across_calls(self, engine_pairs, queries):
        _, proc = engine_pairs("dtw")
        proc.search(queries[0], 0.01)
        pool = proc._pool
        assert pool is not None
        proc.search(queries[1], 0.01)
        assert proc._pool is pool  # same spawned workers, warm caches


class TestMutationParity:
    def test_spill_path_and_tombstones(self, data):
        """Object-built engines exercise the snapshot/spill path; removes
        must be replayed as tombstones in the workers and inserts must
        force a pool respawn."""
        sim = DITAEngine(data, _config("simulated"), "dtw")
        proc = DITAEngine(data, _config("process"), "dtw")
        try:
            q = sample_queries(data, 1, seed=23)[0]
            assert _ids_and_dists(sim.search(q, 0.01)) == _ids_and_dists(
                proc.search(q, 0.01)
            )
            victim = _ids_and_dists(sim.search(q, 0.01))[0][0]
            for e in (sim, proc):
                assert e.remove(victim)
                e.insert(
                    type(q)(990001, (np.asarray(q.points) + 0.0005).tolist())
                )
            got_sim = _ids_and_dists(sim.search(q, 0.01))
            got_proc = _ids_and_dists(proc.search(q, 0.01))
            assert got_sim == got_proc
            assert victim not in [tid for tid, _ in got_proc]
        finally:
            sim.shutdown()
            proc.shutdown()


# --------------------------------------------------------------------- #
# worker-count / steal-order invariance
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def engines_by_workers(store_path):
    engines = {
        w: DITAEngine.from_store(
            TrajectoryStore.open(store_path), _config("process", workers=w), "dtw"
        )
        for w in (1, 2, 3)
    }
    engines[0] = DITAEngine.from_store(
        TrajectoryStore.open(store_path), _config("simulated"), "dtw"
    )
    yield engines
    for e in engines.values():
        e.shutdown()


class TestInvariance:
    @settings(max_examples=8, deadline=None)
    @given(qi=st.integers(min_value=0, max_value=3), tau=st.sampled_from([0.002, 0.01]))
    def test_results_independent_of_worker_count(self, engines_by_workers, queries, qi, tau):
        q = queries[qi]
        want = _ids_and_dists(engines_by_workers[0].search(q, tau))
        for w in (1, 2, 3):
            assert _ids_and_dists(engines_by_workers[w].search(q, tau)) == want

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_executor_invariant_under_steal_order(self, raw_pool, seed):
        """The raw executor returns the same value map whatever the
        initial deque assignment — stealing only moves work, never
        changes it."""
        specs = [
            TaskSpec(i, "debug.spin", "L", 0, (2000 * (i % 4 + 1),))
            for i in range(12)
        ]
        want = {s.task_id: run_task_body(s, None) for s in specs}
        got = raw_pool.run(specs, affinity=[0] * len(specs), schedule_seed=seed)
        assert {tid: r.value for tid, r in got.items()} == want

    @settings(max_examples=25, deadline=None)
    @given(
        costs=st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=40),
        n=st.integers(min_value=1, max_value=8),
    )
    def test_schedule_makespan_bounds(self, costs, n):
        """The scheduler replay respects the classic list-scheduling
        bounds: never better than the critical path or the perfect split,
        never worse than (2 - 1/n) x optimal."""
        span = schedule_makespan(costs, n)
        lower = max(max(costs), sum(costs) / n)
        assert span >= lower - 1e-9
        assert span <= (2 - 1 / n) * lower + 1e-9
        assert schedule_makespan(costs, 1) == pytest.approx(sum(costs))

    def test_schedule_makespan_balances_hot_affinity(self):
        """Seeding every task onto worker 0 (a hot partition home) does
        not serialize: stealing spreads the deque."""
        costs = [1.0] * 16
        span = schedule_makespan(costs, 4, affinity=[0] * 16)
        assert span <= sum(costs) / 2  # far below the 16.0 serial time

    def test_stealing_actually_happens(self, raw_pool):
        before = raw_pool.steals
        specs = [TaskSpec(i, "debug.spin", "L", 0, (50000,)) for i in range(8)]
        raw_pool.run(specs, affinity=[0] * len(specs))
        assert raw_pool.steals > before  # all work started on worker 0


# --------------------------------------------------------------------- #
# failure paths and the zero-copy guard
# --------------------------------------------------------------------- #


def _worker_init(store_path):
    side = SideInit(
        store_path=str(store_path), config=_config("process"), adapter=get_adapter("dtw")
    )
    return WorkerInit(sides=(("L", side), ("R", side)))


@pytest.fixture(scope="module")
def raw_pool(store_path):
    pool = ParallelExecutor(_worker_init(store_path), num_workers=2)
    yield pool
    pool.close()


class TestFailurePaths:
    def test_worker_crash_is_typed(self, store_path):
        pool = ParallelExecutor(_worker_init(store_path), num_workers=1)
        try:
            with pytest.raises(ExecutorError) as exc:
                pool.run([TaskSpec(0, "debug.crash", "L", 0, (3,))])
            assert "died with exit code 3" in str(exc.value)
            assert "BrokenProcessPool" not in str(exc.value)
        finally:
            pool.close()

    def test_unpicklable_result_is_typed(self, store_path):
        pool = ParallelExecutor(_worker_init(store_path), num_workers=1)
        try:
            with pytest.raises(ExecutorError) as exc:
                pool.run([TaskSpec(0, "debug.unpicklable", "L", 0, ())])
            assert "unpicklable" in str(exc.value)
        finally:
            pool.close()

    def test_pickle_budget_rejects_smuggled_coordinates(self, store_path):
        """A join chunk that carries coordinate arrays instead of row ids
        blows its pickle budget and is refused before dispatch."""
        pool = ParallelExecutor(_worker_init(store_path), num_workers=1)
        try:
            smuggled = TaskSpec(
                0, "join.chunk", "L", 0, ("L", 0, (1, 2, 3), np.zeros((2000, 2)))
            )
            with pytest.raises(ExecutorError) as exc:
                pool.run([smuggled])
            assert "dataset coordinates must never cross" in str(exc.value)
            # the budget itself never prices dataset coordinates
            assert pickle_budget(smuggled) < 2000 * 2 * 8
        finally:
            pool.close()

    def test_engine_surfaces_crash_in_fault_report(self, store_path, queries):
        """The regression this PR fixes: a dead worker used to escape as a
        raw BrokenProcessPool traceback; now it is an ExecutorError, the
        FaultReport counts it, and the pool respawns on the next call."""
        from repro.core.engine import _EngineTask, _LocalResolver

        engine = DITAEngine.from_store(
            TrajectoryStore.open(store_path), _config("process"), "dtw"
        )
        try:
            baseline = _ids_and_dists(engine.search(queries[0], 0.01))
            pid = engine.partition_pids()[0]
            crash = _EngineTask(
                spec=TaskSpec(0, "debug.crash", "L", pid, (3,)),
                work=1.0,
                tag="debug.crash",
                cluster_pid=pid,
            )
            with pytest.raises(ExecutorError) as exc:
                engine._process_outcomes([crash], _LocalResolver(engine))
            assert "died with exit code" in str(exc.value)
            assert engine.cluster.fault_report().executor_failures == 1
            # the next call respawns the pool and works
            assert _ids_and_dists(engine.search(queries[0], 0.01)) == baseline
        finally:
            engine.shutdown()
