"""Grammar fuzz for the SQL front end.

A seeded ``random.Random`` generator derives ~200 statements straight from
the grammar productions (so every one is syntactically valid by
construction) and asserts the parse → unparse → parse round trip yields an
identical AST.  A second battery pins the parser's error *positions* for
malformed input — "somewhere in the string" regressions fail loudly.
"""

import random

import pytest

from repro.sql import parse, unparse
from repro.sql.ast import BinaryOp, ColumnRef, FunctionCall, Literal, Select
from repro.sql.tokens import SQLError
from repro.sql.unparse import unparse_expr

# identifier pools chosen to dodge every keyword
TABLES = ["taxi", "trips", "geolife", "fleet", "t1"]
ALIASES = ["a", "b", "x", "lhs", "rhs"]
COLUMNS = ["traj_id", "trajectory", "distance", "speed", "len_m"]
FUNCS = ["dtw", "frechet", "lcss", "edr", "erp", "length", "abs", "myfunc"]
WORDS = ["beijing", "chengdu", "osm", "route"]


# --------------------------------------------------------------------- #
# grammar-directed text generator
# --------------------------------------------------------------------- #


def gen_number(rng: random.Random) -> str:
    kind = rng.randrange(4)
    if kind == 0:
        return str(rng.randint(0, 999))
    if kind == 1:
        return f"{rng.randint(0, 9)}.{rng.randint(0, 9999)}"
    if kind == 2:
        return f"0.{rng.randint(1, 99):02d}"
    return f"{rng.randint(1, 9)}e-{rng.randint(1, 6)}"


def gen_trajectory(rng: random.Random) -> str:
    pts = []
    for _ in range(rng.randint(1, 4)):
        coords = [
            ("-" if rng.random() < 0.3 else "") + gen_number(rng)
            for _ in range(rng.choice([2, 2, 3]))
        ]
        pts.append("(" + ", ".join(coords) + ")")
    return "[" + ", ".join(pts) + "]"


def gen_primary(rng: random.Random, depth: int) -> str:
    kind = rng.randrange(8 if depth > 0 else 6)
    if kind == 0:
        return gen_number(rng)
    if kind == 1:
        return f"'{rng.choice(WORDS)}'"
    if kind == 2:
        return f":{rng.choice(COLUMNS)}"
    if kind == 3:
        col = rng.choice(COLUMNS)
        return f"{rng.choice(ALIASES)}.{col}" if rng.random() < 0.5 else col
    if kind == 4:
        return gen_trajectory(rng)
    if kind == 5:
        return "-" + gen_primary(rng, depth)
    if kind == 6:
        name = rng.choice(FUNCS)
        if name == "count" or rng.random() < 0.1:
            return "count(*)"
        args = ", ".join(gen_arith(rng, depth - 1) for _ in range(rng.randint(1, 2)))
        return f"{name}({args})"
    return "(" + gen_predicate(rng, depth - 1) + ")"


def gen_arith(rng: random.Random, depth: int) -> str:
    left = gen_primary(rng, depth)
    while depth > 0 and rng.random() < 0.4:
        op = rng.choice(["+", "-", "*", "/"])
        left = f"{left} {op} {gen_primary(rng, depth)}"
    return left


def gen_comparison(rng: random.Random, depth: int) -> str:
    left = gen_arith(rng, depth)
    if rng.random() < 0.7:
        op = rng.choice(["<=", "<", ">=", ">", "=", "!=", "<>"])
        return f"{left} {op} {gen_arith(rng, depth)}"
    return left


def gen_predicate(rng: random.Random, depth: int) -> str:
    parts = [gen_comparison(rng, depth)]
    while depth > 0 and rng.random() < 0.35:
        parts.append(rng.choice(["AND", "OR"]))
        nxt = gen_comparison(rng, depth)
        if rng.random() < 0.2:
            nxt = "NOT " + nxt
        parts.append(nxt)
    return " ".join(parts)


def gen_table_ref(rng: random.Random) -> str:
    name = rng.choice(TABLES)
    r = rng.random()
    if r < 0.33:
        return name
    if r < 0.66:
        return f"{name} {rng.choice(ALIASES)}"
    return f"{name} AS {rng.choice(ALIASES)}"


def gen_statement(seed: int) -> str:
    """One statement per seed: CREATE INDEX, TRA-JOIN or plain SELECT."""
    rng = random.Random(seed)
    if seed % 10 == 0:
        return f"CREATE INDEX {rng.choice(COLUMNS)}_idx ON {rng.choice(TABLES)} USE TRIE"
    items = "*" if rng.random() < 0.3 else ", ".join(
        gen_arith(rng, 2) for _ in range(rng.randint(1, 3))
    )
    parts = [f"SELECT {items} FROM {gen_table_ref(rng)}"]
    if seed % 3 == 0:
        parts.append(f"TRA-JOIN {gen_table_ref(rng)} ON {gen_predicate(rng, 2)}")
    if rng.random() < 0.7:
        parts.append(f"WHERE {gen_predicate(rng, 2)}")
    if rng.random() < 0.4:
        orders = []
        for _ in range(rng.randint(1, 2)):
            orders.append(gen_arith(rng, 1) + rng.choice(["", " ASC", " DESC"]))
        parts.append("ORDER BY " + ", ".join(orders))
    if rng.random() < 0.4:
        parts.append(f"LIMIT {rng.randint(1, 100)}")
    return " ".join(parts)


# --------------------------------------------------------------------- #
# round trip: parse -> unparse -> parse is the identity on ASTs
# --------------------------------------------------------------------- #


N_STATEMENTS = 220


class TestRoundTrip:
    def test_fuzz_sweep(self):
        joins = creates = 0
        for seed in range(N_STATEMENTS):
            text = gen_statement(seed)
            ast1 = parse(text)
            text2 = unparse(ast1)
            ast2 = parse(text2)
            assert ast2 == ast1, f"seed={seed}\n  in:  {text}\n  out: {text2}"
            # the round trip must also be a fixpoint: unparsing the
            # re-parsed tree reproduces the same text
            assert unparse(ast2) == text2, f"seed={seed}"
            if isinstance(ast1, Select) and ast1.join_table is not None:
                joins += 1
            if not isinstance(ast1, Select):
                creates += 1
        assert joins >= 50  # the sweep genuinely covers TRA-JOIN ...
        assert creates >= 20  # ... and CREATE INDEX ... USE TRIE

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * FROM taxi",
            "SELECT taxi.traj_id, distance FROM taxi WHERE DTW(taxi, :q) <= 0.005",
            "SELECT a.traj_id, b.traj_id, distance FROM taxi a TRA-JOIN taxi b "
            "ON DTW(a, b) <= 0.002",
            "CREATE INDEX taxi_idx ON taxi USE TRIE",
            "SELECT count(*) FROM trips WHERE NOT (speed > 3 OR speed < 1) AND len_m != 0",
            "SELECT * FROM trips ORDER BY distance DESC, traj_id LIMIT 5",
            "SELECT * FROM t WHERE DTW(t, [(0.1, 0.2), (-0.3, 0.4)]) <= 1e-3",
            "SELECT -speed, 2 * -(speed + 1) FROM trips WHERE -speed <= --3",
            "SELECT * FROM t WHERE (a <= b) + 1 = 2 - 3 - 4",
        ],
    )
    def test_canonical_statements(self, text):
        ast1 = parse(text)
        assert parse(unparse(ast1)) == ast1

    def test_unary_minus_pattern_emits_prefix(self):
        # the parser's unary-minus desugaring must round-trip as prefix "-":
        # the literal text "-1.0 * x" re-parses to a *different* tree
        ast = parse("SELECT -speed FROM t")
        expr = ast.items[0]
        assert expr == BinaryOp("*", Literal(-1.0), ColumnRef("speed"))
        assert unparse_expr(expr) == "-speed"
        nested = parse("SELECT -1.0 * speed FROM t").items[0]
        assert nested != expr  # the trap the special case exists for
        assert parse(f"SELECT {unparse_expr(nested)} FROM t").items[0] == nested

    def test_count_star_round_trips(self):
        ast = parse("SELECT count(*) FROM t")
        assert ast.items[0] == FunctionCall("count", (ColumnRef("*"),))
        assert "count(*)" in unparse(ast)
        assert parse(unparse(ast)) == ast

    def test_precedence_parens_preserved(self):
        ast = parse("SELECT * FROM t WHERE (a OR b) AND c * (1 + 2) >= 3")
        text = unparse(ast)
        assert parse(text) == ast
        assert "(a OR b)" in text and "(1.0 + 2.0)" in text


# --------------------------------------------------------------------- #
# error positions: malformed input must point at the offending character
# --------------------------------------------------------------------- #


class TestErrorPositions:
    @pytest.mark.parametrize(
        "text,message",
        [
            ("SELEC * FROM t", "expected SELECT or CREATE at position 0"),
            ("SELECT * FRM t", "expected FROM at position 9"),
            ("SELECT a b FROM t", "expected FROM at position 9"),
            ("SELECT * FROM t WHERE", "unexpected token '' at position 21"),
            ("SELECT * FROM t TRA-JOIN s ON", "unexpected token '' at position 29"),
            ("CREATE INDEX i ON t USE HASH", "expected TRIE at position 24"),
            ("CREATE INDEX ON t USE TRIE", "expected index name at position 13"),
            ("SELECT * FROM t LIMIT x", "expected limit count at position 22"),
            ("SELECT * FROM t WHERE a <= 1 )", "expected end of statement at position 29"),
            ("SELECT DTW(a, FROM t", "unexpected token 'FROM' at position 14"),
            ("SELECT * FROM t WHERE a <= (1 + 2", "expected ')' at position 33"),
            ("SELECT * FROM t WHERE q <= [(1, 2", "expected ')' at position 33"),
        ],
    )
    def test_parse_errors_carry_positions(self, text, message):
        with pytest.raises(SQLError) as exc:
            parse(text)
        assert message in str(exc.value), f"got: {exc.value}"

    @pytest.mark.parametrize(
        "text,message",
        [
            ("SELECT 'abc FROM t", "unterminated string literal at position 7"),
            ("SELECT : FROM t", "empty parameter name at position 7"),
            ("SELECT # FROM t", "unexpected character '#' at position 7"),
            ("SELECT ! FROM t", "unexpected character '!' at position 7"),
        ],
    )
    def test_lexer_errors_carry_positions(self, text, message):
        with pytest.raises(SQLError) as exc:
            parse(text)
        assert message in str(exc.value)

    def test_dangling_exponent_is_not_a_number(self):
        """Regression (found by the mutation sweep): "9e-" used to lex as a
        single NUMBER token that float() rejected with a bare ValueError;
        the exponent must only be consumed when digits follow."""
        from repro.sql import tokenize

        values = [t.value for t in tokenize("9e- 4")]
        assert values[0] == "9"  # the "e" is a separate identifier
        with pytest.raises(SQLError, match="position"):
            parse("SELECT * FROM t LIMIT 9e-")

    def test_every_error_names_a_position(self):
        """Property over a corpus of mutations: whatever the failure, the
        message must localize it."""
        rng = random.Random(99)
        broken = 0
        for seed in range(120):
            text = gen_statement(seed)
            cut = rng.randint(1, max(1, len(text) - 1))
            mutated = text[:cut] + " ) ] <= " + text[cut:]
            try:
                parse(mutated)
            except SQLError as exc:
                assert "position" in str(exc), mutated
                broken += 1
        assert broken > 80  # the mutation really does break most statements
