"""Differential tests: wavefront kernels vs. the reference loops.

The vectorized anti-diagonal sweeps must produce *identical* answers to the
legacy per-cell Python DPs (to 1e-9) on seeded-random trajectories across
lengths (including length-1 edge cases) and dimensions, and the threshold
variants must be sound: never report a value below the exact distance, and
return the exact distance whenever it is within tau.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distances import (
    dtw,
    dtw_reference,
    dtw_threshold,
    dtw_threshold_reference,
    edr,
    edr_reference,
    edr_threshold,
    erp,
    erp_reference,
    erp_threshold,
    frechet,
    frechet_reference,
    frechet_threshold,
)
from repro.distances.dtw import _forward_rows
from repro.kernels import dtw_wavefront_last_row

EDR_EPS = 0.002

#: (m, n, d) shapes covering the wavefront's boundary cases: single-point
#: trajectories (one diagonal), skinny tables, square tables, high dims
SHAPES = [
    (1, 1, 2),
    (1, 7, 2),
    (9, 1, 2),
    (2, 2, 2),
    (5, 13, 2),
    (13, 5, 2),
    (31, 31, 2),
    (17, 64, 3),
    (40, 40, 5),
    (64, 63, 2),
]


def _walk(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    start = rng.uniform(0.0, 1.0, size=d)
    steps = rng.normal(scale=1e-3, size=(n, d))
    steps[0] = 0.0
    return start + np.cumsum(steps, axis=0)


def _pairs():
    rng = np.random.default_rng(42)
    for m, n, d in SHAPES:
        for _ in range(3):
            yield _walk(rng, m, d), _walk(rng, n, d)


class TestExactMatchesReference:
    def test_dtw(self):
        for a, b in _pairs():
            assert dtw(a, b) == pytest.approx(dtw_reference(a, b), abs=1e-9)

    def test_frechet(self):
        for a, b in _pairs():
            assert frechet(a, b) == pytest.approx(frechet_reference(a, b), abs=1e-9)

    def test_edr(self):
        for a, b in _pairs():
            assert edr(a, b, EDR_EPS) == edr_reference(a, b, EDR_EPS)

    def test_erp(self):
        for a, b in _pairs():
            gap = np.zeros(a.shape[1])
            assert erp(a, b, gap) == pytest.approx(erp_reference(a, b, gap), abs=1e-9)

    def test_identical_trajectories_are_exactly_zero(self):
        rng = np.random.default_rng(3)
        t = _walk(rng, 33, 2)
        assert dtw(t, t) == 0.0
        assert frechet(t, t) == 0.0
        assert edr(t, t, EDR_EPS) == 0
        assert erp(t, t, np.zeros(2)) == 0.0


class TestThresholdSoundness:
    """tau above the exact value => the exact value; tau below => inf (or at
    least never an underestimate)."""

    def _check(self, exact_val, threshold_fn, a, b, *args):
        above = threshold_fn(a, b, *args, exact_val * 1.5 + 1e-12)
        assert above == pytest.approx(exact_val, abs=1e-9)
        at = threshold_fn(a, b, *args, exact_val + 1e-12)
        assert at == pytest.approx(exact_val, abs=1e-9)
        if exact_val > 1e-9:
            below = threshold_fn(a, b, *args, exact_val * 0.5)
            assert below >= exact_val - 1e-9  # never an underestimate

    def test_dtw(self):
        for a, b in _pairs():
            self._check(dtw(a, b), dtw_threshold, a, b)

    def test_frechet(self):
        for a, b in _pairs():
            self._check(frechet(a, b), frechet_threshold, a, b)

    def test_edr(self):
        for a, b in _pairs():
            self._check(float(edr(a, b, EDR_EPS)), edr_threshold, a, b, EDR_EPS)

    def test_erp(self):
        for a, b in _pairs():
            gap = np.zeros(a.shape[1])
            self._check(erp(a, b, gap), erp_threshold, a, b, gap)

    def test_dtw_threshold_matches_reference_when_within_tau(self):
        for a, b in _pairs():
            d = dtw(a, b)
            tau = d * 1.25 + 1e-12
            assert dtw_threshold(a, b, tau) == pytest.approx(
                dtw_threshold_reference(a, b, tau), abs=1e-9
            )

    def test_below_tau_prunes_to_inf_or_exact(self):
        rng = np.random.default_rng(9)
        a, b = _walk(rng, 48, 2), _walk(rng, 48, 2)
        d = dtw(a, b)
        assert math.isinf(dtw_threshold(a, b, d * 0.25))
        f = frechet(a, b)
        assert math.isinf(frechet_threshold(a, b, f * 0.25))


class TestLastRow:
    """The forward-rows kernel backing double-direction DTW."""

    def test_matches_loop_oracle(self):
        rng = np.random.default_rng(17)
        for m, n, d in [(5, 9, 2), (20, 20, 2), (1, 6, 3), (33, 12, 2)]:
            a, b = _walk(rng, m, d), _walk(rng, n, d)
            w = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
            tau = float(np.median(w)) * max(m, n) / 2
            vec = dtw_wavefront_last_row(w, m, tau)
            ref = _forward_rows(w, m, tau)
            if ref is None:
                assert vec is None
            else:
                assert vec is not None
                finite = np.isfinite(ref)
                assert np.array_equal(finite, np.isfinite(vec))
                assert np.allclose(ref[finite], vec[finite], atol=1e-9)


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            dtw(np.zeros((0, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            frechet(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            erp(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(3))
