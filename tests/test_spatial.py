"""Tests for the spatial substrate: STR packing, R-tree, grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.spatial import GridIndex, RTree, str_group_sizes, str_partition, str_tile_1d

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestSTRTile1D:
    def test_balanced_split(self):
        groups = str_tile_1d(np.arange(10.0), 2)
        assert sorted(len(g) for g in groups) == [5, 5]

    def test_single_tile(self):
        groups = str_tile_1d(np.arange(7.0), 1)
        assert len(groups) == 1
        assert groups[0].size == 7

    def test_rank_contiguous(self):
        values = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        groups = str_tile_1d(values, 2)
        # first group holds the smallest ranks
        assert sorted(values[groups[0]].tolist()) == [1.0, 2.0, 3.0]

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            str_tile_1d(np.arange(3.0), 0)


class TestSTRPartition:
    def test_exact_cover(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(100, 2))
        tiles = str_partition(pts, 9)
        all_idx = np.concatenate(tiles)
        assert sorted(all_idx.tolist()) == list(range(100))

    def test_balance_on_skew(self):
        """STR's guarantee: roughly equal tiles even on skewed data."""
        rng = np.random.default_rng(1)
        pts = np.vstack([rng.normal(0, 0.001, size=(90, 2)), rng.uniform(0, 10, size=(10, 2))])
        tiles = str_partition(pts, 4)
        sizes = str_group_sizes(tiles)
        assert max(sizes) <= 2 * min(sizes) + 2

    def test_more_tiles_than_points(self):
        pts = np.random.default_rng(2).uniform(0, 1, size=(3, 2))
        tiles = str_partition(pts, 100)
        assert sum(t.size for t in tiles) == 3

    def test_single_point(self):
        tiles = str_partition(np.array([[0.5, 0.5]]), 4)
        assert len(tiles) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            str_partition(np.empty((0, 2)), 2)

    @settings(max_examples=40)
    @given(st.integers(1, 50), st.integers(1, 10))
    def test_every_point_assigned_once(self, n, k):
        pts = np.random.default_rng(n * 31 + k).uniform(0, 1, size=(n, 2))
        tiles = str_partition(pts, k)
        all_idx = sorted(np.concatenate(tiles).tolist())
        assert all_idx == list(range(n))


def _random_entries(n, seed=0):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(n):
        low = rng.uniform(0, 100, size=2)
        high = low + rng.uniform(0, 5, size=2)
        entries.append((MBR(low, high), i))
    return entries


class TestRTree:
    def test_len_and_height(self):
        entries = _random_entries(100)
        tree = RTree(entries, max_entries=8)
        assert len(tree) == 100
        assert tree.height >= 2

    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.search_min_dist(np.array([0.0, 0.0]), 10) == []
        assert tree.nearest(np.array([0.0, 0.0])) == []

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree([], max_entries=1)

    def test_search_min_dist_matches_scan(self):
        entries = _random_entries(200, seed=3)
        tree = RTree(entries, max_entries=8)
        q = np.array([50.0, 50.0])
        for tau in (0.5, 5.0, 30.0):
            got = sorted(pid for _, pid in tree.search_min_dist(q, tau))
            want = sorted(pid for mbr, pid in entries if mbr.min_dist_point(q) <= tau)
            assert got == want

    def test_search_intersects_matches_scan(self):
        entries = _random_entries(150, seed=4)
        tree = RTree(entries, max_entries=6)
        region = MBR((20, 20), (60, 60))
        got = sorted(pid for _, pid in tree.search_intersects(region))
        want = sorted(pid for mbr, pid in entries if mbr.intersects(region))
        assert got == want

    def test_nearest_matches_scan(self):
        entries = _random_entries(120, seed=5)
        tree = RTree(entries, max_entries=8)
        q = np.array([10.0, 90.0])
        got = [pid for _, _, pid in tree.nearest(q, k=5)]
        want = sorted(entries, key=lambda e: e[0].min_dist_point(q))[:5]
        assert got == [pid for _, pid in want]

    def test_all_entries_complete(self):
        entries = _random_entries(77, seed=6)
        tree = RTree(entries, max_entries=4)
        assert sorted(pid for _, pid in tree.all_entries()) == list(range(77))

    def test_search_predicate_generic(self):
        entries = _random_entries(50, seed=7)
        tree = RTree(entries, max_entries=4)
        region = MBR((0, 0), (50, 50))
        got = sorted(
            pid
            for _, pid in tree.search_predicate(
                lambda m: m.intersects(region), lambda m: region.contains_mbr(m)
            )
        )
        want = sorted(pid for mbr, pid in entries if region.contains_mbr(mbr))
        assert got == want


class TestGridIndex:
    def test_insert_and_probe(self):
        g = GridIndex(cell_size=1.0)
        g.insert_trajectory(1, np.array([(0.5, 0.5), (5.5, 5.5)]))
        g.insert_trajectory(2, np.array([(9.5, 9.5)]))
        assert 1 in g.candidates_near_point(np.array([0.6, 0.6]), 0.5)
        assert 2 not in g.candidates_near_point(np.array([0.6, 0.6]), 0.5)

    def test_superset_guarantee(self):
        """Every trajectory with a point within radius is returned."""
        rng = np.random.default_rng(8)
        g = GridIndex(cell_size=0.7)
        trajs = {}
        for tid in range(30):
            pts = rng.uniform(0, 10, size=(5, 2))
            trajs[tid] = pts
            g.insert_trajectory(tid, pts)
        q = np.array([5.0, 5.0])
        radius = 1.3
        got = g.candidates_near_point(q, radius)
        for tid, pts in trajs.items():
            truly_near = np.min(np.sqrt(np.sum((pts - q) ** 2, axis=1))) <= radius
            if truly_near:
                assert tid in got

    def test_candidates_near_trajectory(self):
        g = GridIndex(cell_size=1.0)
        g.insert_trajectory(7, np.array([(0.0, 0.0)]))
        q = np.array([(10.0, 10.0), (0.2, 0.2)])
        assert 7 in g.candidates_near_trajectory(q, 0.5)

    def test_counters(self):
        g = GridIndex(cell_size=1.0)
        g.insert_trajectory(1, np.array([(0.1, 0.1), (0.2, 0.2), (5.0, 5.0)]))
        assert g.n_points == 3
        assert g.n_cells == 2

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)
