"""Chaos harness: property-style sweeps over seeded fault plans.

The contract under test (ISSUE acceptance):

* **result-equivalence** — for every distance adapter and for
  search / search_batch / knn / join, results under *any* seeded
  :class:`FaultPlan` equal the fault-free results exactly;
* **determinism** — same seed + same plan ⇒ byte-identical
  FaultReport / ExecutionReport JSON, including across ``reset_clocks``;
* **liveness** — plans that fail forever raise a typed
  :class:`TaskAbandonedError` promptly instead of hanging, and
  straggler-only plans show speculation strictly reducing makespan.

The sweep uses a seeded ``random.Random`` plan generator (every case is a
pure function of its seed); the hypothesis block at the bottom fuzzes the
decision primitives when hypothesis is available (derandomized, so CI stays
deterministic).
"""

import json
import random

import pytest

from repro.cluster import Cluster, FaultPlan, RecoveryPolicy, TaskAbandonedError
from repro.core.adapters import EDRAdapter, ERPAdapter, LCSSAdapter, get_adapter
from repro.core.config import DITAConfig
from repro.core.engine import DITAEngine
from repro.core.knn import knn_search
from repro.datagen import citywide_dataset, sample_queries

# one (adapter factory, search tau, join tau) per distance family; EDR/LCSS
# taus are edit counts, the rest are spatial distances
ADAPTERS = [
    ("dtw", lambda: get_adapter("dtw"), 0.004, 0.002),
    ("frechet", lambda: get_adapter("frechet"), 0.003, 0.002),
    ("hausdorff", lambda: get_adapter("hausdorff"), 0.002, 0.001),
    ("edr", lambda: EDRAdapter(epsilon=0.0005), 2, 2),
    ("lcss", lambda: LCSSAdapter(epsilon=0.0005, delta=3), 2, 2),
    ("erp", lambda: ERPAdapter(ndim=2), 0.01, 0.005),
]

CFG = DITAConfig(num_global_partitions=2, trie_fanout=3, num_pivots=2, trie_leaf_capacity=3)
PATIENT = RecoveryPolicy(max_retries=10)


def random_plan(seed: int) -> FaultPlan:
    """A fault plan drawn from a seeded generator — each chaos case is a
    pure function of its seed."""
    rng = random.Random(seed)
    return FaultPlan(
        seed=seed,
        worker_crash_rate=rng.choice([0.0, 0.3, 0.6]),
        crash_after_tasks_max=rng.randint(1, 6),
        task_failure_rate=rng.choice([0.0, 0.2, 0.4]),
        message_drop_rate=rng.choice([0.0, 0.2, 0.4]),
        straggler_rate=rng.choice([0.0, 0.25, 0.5]),
        straggler_slowdown=rng.choice([2.0, 4.0, 8.0]),
    )


@pytest.fixture(scope="module")
def city():
    return list(citywide_dataset(40, seed=71))


@pytest.fixture(scope="module")
def queries(city):
    return sample_queries(city, 2, seed=5, perturb=0.0002)


def _ids(matches):
    return sorted((t.traj_id, d) for t, d in matches)


def _job(engine, queries, search_tau, join_tau, k=3):
    """One mixed workload; returns everything an equivalence check needs."""
    out = {
        "search": [_ids(engine.search(q, search_tau)) for q in queries],
        "batch": [_ids(m) for m in engine.search_batch(queries, [search_tau] * len(queries))],
        "knn": [_ids(knn_search(engine, queries[0], k))],
        "join": engine.self_join(join_tau),
    }
    return out


class TestChaosSweep:
    """Result-equivalence + determinism over a sweep of random plans,
    rotating through all six distance adapters."""

    @pytest.mark.parametrize("chaos_seed", range(12))
    def test_results_equal_fault_free(self, chaos_seed, city, queries):
        name, make_adapter, search_tau, join_tau = ADAPTERS[chaos_seed % len(ADAPTERS)]
        plan = random_plan(chaos_seed)
        healthy = DITAEngine(city, CFG, distance=make_adapter())
        want = _job(healthy, queries, search_tau, join_tau)
        faulty = DITAEngine(city, CFG, distance=make_adapter())
        faulty.cluster.install_faults(plan, PATIENT)
        got = _job(faulty, queries, search_tau, join_tau)
        assert got == want, f"adapter={name} plan={plan}"

    @pytest.mark.parametrize("chaos_seed", [1, 5, 9])
    def test_reports_byte_identical(self, chaos_seed, city, queries):
        name, make_adapter, search_tau, join_tau = ADAPTERS[chaos_seed % len(ADAPTERS)]
        plan = random_plan(chaos_seed)

        def run():
            engine = DITAEngine(city, CFG, distance=make_adapter())
            engine.cluster.install_faults(plan, PATIENT)
            _job(engine, queries, search_tau, join_tau)
            return json.dumps(engine.cluster.report().to_dict(), sort_keys=True)

        assert run() == run()

    @pytest.mark.parametrize("chaos_seed", [2, 7])
    def test_reset_clocks_replays_identically(self, chaos_seed, city, queries):
        """Back-to-back jobs on one cluster see the same fault sequence —
        the fault stream rewinds with the clocks (no leak across jobs)."""
        name, make_adapter, search_tau, join_tau = ADAPTERS[chaos_seed % len(ADAPTERS)]
        plan = random_plan(chaos_seed)
        engine = DITAEngine(city, CFG, distance=make_adapter())
        engine.cluster.install_faults(plan, PATIENT)
        first = _job(engine, queries, search_tau, join_tau)
        snap1 = json.dumps(engine.cluster.report().to_dict(), sort_keys=True)
        engine.cluster.reset_clocks()
        second = _job(engine, queries, search_tau, join_tau)
        snap2 = json.dumps(engine.cluster.report().to_dict(), sort_keys=True)
        assert second == first
        assert snap2 == snap1


class TestAbandonment:
    """Plans that fail forever must fail fast and typed — never hang."""

    @pytest.mark.parametrize("chaos_seed", range(4))
    def test_total_task_failure_raises_promptly(self, chaos_seed, city, queries):
        plan = FaultPlan(seed=chaos_seed, task_failure_rate=1.0)
        engine = DITAEngine(city, CFG)
        engine.cluster.install_faults(plan, RecoveryPolicy(max_retries=2))
        with pytest.raises(TaskAbandonedError) as exc:
            _job(engine, queries, 0.004, 0.002)
        assert exc.value.attempts == 3
        assert engine.fault_report().abandoned_tasks == 1

    def test_total_message_loss_raises_promptly(self):
        plan = FaultPlan(seed=0, message_drop_rate=1.0)
        c = Cluster(n_workers=2, faults=plan, recovery=RecoveryPolicy(max_retries=3))
        c.place_partitions([0, 1])
        with pytest.raises(TaskAbandonedError) as exc:
            c.ship(0, 1, 1000)
        assert exc.value.what.startswith("message")


def _single_straggler_seeds(n_workers, rate, slowdown, want=3):
    """Seeds whose plan marks exactly one of ``n_workers`` as a straggler."""
    found = []
    for seed in range(500):
        plan = FaultPlan(seed=seed, straggler_rate=rate, straggler_slowdown=slowdown)
        if sum(1 for f in plan.straggler_factors(n_workers) if f > 1.0) == 1:
            found.append(seed)
            if len(found) == want:
                return found
    raise AssertionError("not enough single-straggler seeds in range")


class TestStragglerSpeculation:
    """Straggler-only plans: speculation strictly reduces makespan while
    results stay identical."""

    def test_cluster_level_sweep(self):
        for seed in _single_straggler_seeds(6, rate=0.25, slowdown=8.0):
            plan = FaultPlan(seed=seed, straggler_rate=0.25, straggler_slowdown=8.0)

            def run(speculate):
                c = Cluster(n_workers=6, faults=plan,
                            recovery=RecoveryPolicy(use_speculation=speculate))
                c.place_partitions(list(range(6)))
                for _ in range(3):
                    for pid in range(6):
                        c.run_local(pid, lambda: None, work=1.0)
                return c.report()

            fast, slow = run(True), run(False)
            assert fast.makespan < slow.makespan, f"seed={seed}"
            assert fast.faults.speculative_wins > 0
            assert fast.faults.worker_crashes == 0  # straggler-only plan
            assert fast.faults.task_failures == 0

    def test_engine_level(self, city, queries):
        engine = DITAEngine(city, CFG)
        n = engine.cluster.n_workers
        seed = _single_straggler_seeds(n, rate=0.25, slowdown=8.0, want=1)[0]
        plan = FaultPlan(seed=seed, straggler_rate=0.25, straggler_slowdown=8.0)
        healthy_want = _job(DITAEngine(city, CFG), queries, 0.004, 0.002)

        def run(speculate):
            engine.cluster.reset_clocks()
            engine.cluster.install_faults(plan, RecoveryPolicy(use_speculation=speculate))
            got = _job(engine, queries, 0.004, 0.002)
            return got, engine.cluster.report()

        got_fast, fast = run(True)
        got_slow, slow = run(False)
        assert got_fast == healthy_want and got_slow == healthy_want
        assert fast.makespan < slow.makespan
        assert fast.faults.speculative_tasks > 0


class TestStreamingChaos:
    """Faults injected mid-merge and mid-migration: the catalog generation
    either fully advances or fully rolls back, and an abandoned migration
    leaves the old layout byte-for-byte live — never a torn image."""

    def _streamed(self, city, make_adapter=None):
        """A streamed engine with a skewed write pattern: every append
        lands in one hot corner, so a later repartition must migrate rows
        (the STR boundaries move)."""
        engine = DITAEngine(city, CFG, distance=(make_adapter or ADAPTERS[0][1])())
        for k in range(10):
            base = city[k % len(city)].points
            engine.append_trajectory(8_000 + k, base * 0.02 + 0.24 + 0.0005 * k)
        return engine

    @pytest.mark.parametrize("chaos_seed", range(4))
    def test_merge_survives_worker_crashes(self, chaos_seed, city, queries, tmp_path):
        from repro.storage import TrajectoryStore

        name, make_adapter, search_tau, _ = ADAPTERS[chaos_seed % len(ADAPTERS)]
        healthy = self._streamed(city, make_adapter)
        want = [_ids(healthy.search(q, search_tau)) for q in queries]
        engine = self._streamed(city, make_adapter)
        gens = engine.attach_generations(tmp_path / "gens")
        plan = FaultPlan(
            seed=chaos_seed, worker_crash_rate=0.6, crash_after_tasks_max=2,
            task_failure_rate=0.2,
        )
        engine.cluster.install_faults(plan, PATIENT)
        assert engine.merge() == 1
        # the committed generation is a complete, checksum-clean store
        TrajectoryStore.open(gens.current_path(), verify=True)
        got = [_ids(engine.search(q, search_tau)) for q in queries]
        assert got == want, f"adapter={name}"

    def test_abandoned_merge_rolls_back(self, city, queries, tmp_path):
        engine = self._streamed(city)
        gens = engine.attach_generations(tmp_path / "gens")
        engine.merge() == 1  # a healthy baseline generation
        engine.append_trajectory(9_999, city[0].points + 0.001)
        current = (tmp_path / "gens" / "CURRENT").read_text()
        engine.cluster.install_faults(
            FaultPlan(seed=3, task_failure_rate=1.0), RecoveryPolicy(max_retries=2)
        )
        with pytest.raises(TaskAbandonedError):
            engine.merge()
        # full rollback: CURRENT untouched, no staging or gen-2 debris
        assert (tmp_path / "gens" / "CURRENT").read_text() == current
        assert gens.generation == 1
        assert not (tmp_path / "gens" / "gen-00002").exists()
        assert not list((tmp_path / "gens").glob("*.staging"))
        # and the engine still answers from its pre-merge state
        engine.cluster.clear_faults()
        want = self._streamed(city)
        want.append_trajectory(9_999, city[0].points + 0.001)
        for q in queries:
            assert _ids(engine.search(q, 0.004)) == _ids(want.search(q, 0.004))

    @pytest.mark.parametrize("chaos_seed", range(4))
    def test_migration_survives_crashes_and_drops(self, chaos_seed, city, queries, tmp_path):
        name, make_adapter, search_tau, _ = ADAPTERS[chaos_seed % len(ADAPTERS)]
        healthy = self._streamed(city, make_adapter)
        healthy.repartition()
        want = [_ids(healthy.search(q, search_tau)) for q in queries]
        engine = self._streamed(city, make_adapter)
        plan = FaultPlan(
            seed=chaos_seed, worker_crash_rate=0.5, crash_after_tasks_max=2,
            message_drop_rate=0.3,
        )
        engine.cluster.install_faults(plan, PATIENT)
        assert engine.repartition()
        got = [_ids(engine.search(q, search_tau)) for q in queries]
        assert got == want, f"adapter={name}"

    def test_abandoned_migration_leaves_layout_intact(self, city, queries):
        engine = self._streamed(city)
        engine.flush_deltas()
        pids_before = engine.partition_pids()
        parts_before = {pid: engine.partition(pid) for pid in pids_before}
        tries_before = dict(engine.tries)
        engine.cluster.install_faults(
            FaultPlan(seed=1, message_drop_rate=1.0), RecoveryPolicy(max_retries=2)
        )
        with pytest.raises(TaskAbandonedError) as exc:
            engine.repartition()
        assert exc.value.what.startswith("message")
        # the old layout is still live, object-for-object
        assert engine.partition_pids() == pids_before
        assert all(engine.partition(pid) is parts_before[pid] for pid in pids_before)
        assert all(engine.tries[pid] is tries_before[pid] for pid in pids_before)
        engine.cluster.clear_faults()
        want = self._streamed(city)
        want.flush_deltas()
        for q in queries:
            assert _ids(engine.search(q, 0.004)) == _ids(want.search(q, 0.004))


# --------------------------------------------------------------------- #
# hypothesis fuzz of the decision primitives (optional dependency)
# --------------------------------------------------------------------- #

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    seeds = st.integers(min_value=0, max_value=2**63 - 1)

    class TestPlanProperties:
        @settings(max_examples=50, derandomize=True, deadline=None)
        @given(seed=seeds, rate=rates, task_seq=st.integers(0, 10**6), attempt=st.integers(0, 64))
        def test_task_decisions_pure_and_bounded(self, seed, rate, task_seq, attempt):
            plan = FaultPlan(seed=seed, task_failure_rate=rate)
            assert plan.task_fails(task_seq, attempt) == plan.task_fails(task_seq, attempt)
            assert 0.0 <= plan.failure_progress(task_seq, attempt) < 1.0
            if rate == 0.0:
                assert not plan.task_fails(task_seq, attempt)

        @settings(max_examples=50, derandomize=True, deadline=None)
        @given(seed=seeds, rate=rates, n=st.integers(1, 32))
        def test_crash_set_always_leaves_a_survivor(self, seed, rate, n):
            plan = FaultPlan(seed=seed, worker_crash_rate=rate)
            doomed = plan.crash_set(n)
            assert len(set(doomed)) == len(doomed) < n
            assert all(0 <= w < n for w in doomed)

        @settings(max_examples=50, derandomize=True, deadline=None)
        @given(seed=seeds, rate=rates, n=st.integers(1, 32),
               slowdown=st.floats(1.0, 64.0, allow_nan=False))
        def test_straggler_factors_bounded(self, seed, rate, n, slowdown):
            plan = FaultPlan(seed=seed, straggler_rate=rate, straggler_slowdown=slowdown)
            factors = plan.straggler_factors(n)
            assert len(factors) == n
            assert all(f == 1.0 or f == slowdown for f in factors)

        @settings(max_examples=30, derandomize=True, deadline=None)
        @given(seed=seeds, rate=rates, max_retries=st.integers(0, 6))
        def test_run_local_terminates_returns_or_abandons(self, seed, rate, max_retries):
            """Any (plan, policy) either returns the task's value or raises
            the typed error — no hang, body runs at most once."""
            plan = FaultPlan(seed=seed, task_failure_rate=rate)
            c = Cluster(n_workers=2, faults=plan,
                        recovery=RecoveryPolicy(max_retries=max_retries))
            c.place_partitions([0, 1])
            calls = []
            try:
                out = c.run_local(0, lambda: calls.append(1) or "v")
                assert out == "v" and calls == [1]
            except TaskAbandonedError as exc:
                assert exc.attempts == max_retries + 1
                assert calls == []
