"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trajectory import load_jsonl


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "trips.jsonl"
    assert main(["generate", "--kind", "citywide", "--n", "40", "--seed", "3", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_dataset(self, dataset_file):
        ds = load_jsonl(dataset_file)
        assert len(ds) == 40

    def test_all_kinds(self, tmp_path):
        for kind in ("beijing", "chengdu", "osm", "random"):
            out = tmp_path / f"{kind}.jsonl"
            assert main(["generate", "--kind", kind, "--n", "5", "--out", str(out)]) == 0
            assert len(load_jsonl(out)) == 5


class TestStats:
    def test_prints(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "Cardinality" in out and "40" in out


class TestSearch:
    def test_finds_self(self, dataset_file, capsys):
        code = main(
            ["search", str(dataset_file), "--query-id", "0", "--tau", "0.001",
             "--partitions", "2", "--pivots", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trajectories within" in out

    def test_unknown_query_id(self, dataset_file):
        assert main(["search", str(dataset_file), "--query-id", "999", "--tau", "0.1"]) == 1


class TestJoin:
    def test_runs(self, dataset_file, capsys):
        code = main(["join", str(dataset_file), "--tau", "0.002", "--partitions", "2"])
        assert code == 0
        assert "similar pairs" in capsys.readouterr().out


class TestKNN:
    def test_first_neighbour_is_self(self, dataset_file, capsys):
        code = main(
            ["knn", str(dataset_file), "--query-id", "3", "--k", "3", "--partitions", "2"]
        )
        assert code == 0
        first = capsys.readouterr().out.strip().splitlines()[0].split()
        assert first[0] == "3" and float(first[1]) == 0.0


class TestCluster:
    def test_runs(self, dataset_file, capsys):
        code = main(
            ["cluster", str(dataset_file), "--tau", "0.003", "--min-pts", "2",
             "--partitions", "2"]
        )
        assert code == 0
        assert "clusters" in capsys.readouterr().out


class TestTrace:
    def test_search_breakdown(self, dataset_file, capsys):
        ds = load_jsonl(dataset_file)
        qid = sorted(ds.ids)[0]
        assert (
            main(
                ["trace", str(dataset_file), "--mode", "search",
                 "--query-id", str(qid), "--tau", "0.01"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "search.partition" in out
        assert "accounted" in out and "report:" in out

    def test_join_writes_trace_files(self, dataset_file, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        chrome = tmp_path / "chrome.json"
        assert (
            main(
                ["trace", str(dataset_file), "--mode", "join", "--tau", "0.005",
                 "--out", str(trace), "--chrome", str(chrome)]
            )
            == 0
        )
        spans = json.loads(trace.read_text())["spans"]
        events = json.loads(chrome.read_text())["traceEvents"]
        assert spans and len(spans) == len(events)
        assert all(e["ph"] == "X" for e in events)

    def test_knn_requires_query_id(self, dataset_file):
        assert main(["trace", str(dataset_file), "--mode", "knn"]) == 1

    def test_knn_breakdown(self, dataset_file, capsys):
        ds = load_jsonl(dataset_file)
        qid = sorted(ds.ids)[0]
        assert (
            main(["trace", str(dataset_file), "--mode", "knn",
                  "--query-id", str(qid), "--k", "3"])
            == 0
        )
        assert "knn.seed" in capsys.readouterr().out


class TestStore:
    def test_build_inspect_verify(self, dataset_file, tmp_path, capsys):
        import json

        store_dir = tmp_path / "trips.store"
        assert (
            main(["store", "build", str(dataset_file), "--out", str(store_dir),
                  "--groups", "4"])
            == 0
        )
        assert "partitions" in capsys.readouterr().out
        assert main(["store", "inspect", str(store_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_trajectories"] == 40
        assert payload["format_version"] == 1
        assert len(payload["partitions"]) == payload["n_partitions"]
        assert main(["store", "verify", str(store_dir)]) == 0
        assert "checksums match" in capsys.readouterr().out

    def test_build_from_csv(self, dataset_file, tmp_path, capsys):
        from repro.trajectory import load_jsonl, save_csv

        csv_path = tmp_path / "trips.csv"
        save_csv(load_jsonl(dataset_file), csv_path)
        store_dir = tmp_path / "csv.store"
        assert main(["store", "build", str(csv_path), "--out", str(store_dir)]) == 0
        assert "40 trajectories" in capsys.readouterr().out

    def test_inspect_missing_store_fails(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_verify_detects_bit_flip(self, dataset_file, tmp_path, capsys):
        store_dir = tmp_path / "trips.store"
        assert (
            main(["store", "build", str(dataset_file), "--out", str(store_dir)]) == 0
        )
        capsys.readouterr()
        victim = next(store_dir.rglob("coords.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert main(["store", "verify", str(store_dir)]) == 1
        assert "CRC32" in capsys.readouterr().err
