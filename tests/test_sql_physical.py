"""Unit tests for SQL expression evaluation and physical operators."""

import numpy as np
import pytest

from repro.sql.ast import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    NotOp,
    Param,
    TrajectoryLiteral,
)
from repro.sql.physical import FullScan, eval_expr, expr_name
from repro.sql.tokens import SQLError
from repro.trajectory import Trajectory, TrajectoryDataset


ROW = {"t.traj_id": 7, "t.trajectory": Trajectory(7, [(0, 0), (3, 4)]), "distance": 0.5}


class TestEvalExpr:
    def test_literal_and_param(self):
        assert eval_expr(Literal(3.5), ROW, {}) == 3.5
        assert eval_expr(Param("x"), ROW, {"x": 9}) == 9

    def test_unbound_param(self):
        with pytest.raises(SQLError):
            eval_expr(Param("missing"), ROW, {})

    def test_column_qualified(self):
        assert eval_expr(ColumnRef("traj_id", table="t"), ROW, {}) == 7

    def test_column_bare_suffix_match(self):
        assert eval_expr(ColumnRef("traj_id"), ROW, {}) == 7
        assert eval_expr(ColumnRef("distance"), ROW, {}) == 0.5

    def test_column_ambiguous(self):
        row = {"a.x": 1, "b.x": 2}
        with pytest.raises(SQLError):
            eval_expr(ColumnRef("x"), row, {})

    def test_column_unknown(self):
        with pytest.raises(SQLError):
            eval_expr(ColumnRef("nope"), ROW, {})

    def test_arithmetic(self):
        expr = BinaryOp("+", Literal(1.0), BinaryOp("*", Literal(2.0), Literal(3.0)))
        assert eval_expr(expr, ROW, {}) == 7.0
        assert eval_expr(BinaryOp("-", Literal(5.0), Literal(3.0)), ROW, {}) == 2.0
        assert eval_expr(BinaryOp("/", Literal(6.0), Literal(3.0)), ROW, {}) == 2.0

    def test_comparisons(self):
        for op, expected in (("<=", True), ("<", True), (">=", False), (">", False), ("=", False), ("!=", True)):
            assert eval_expr(Comparison(op, Literal(1), Literal(2)), ROW, {}) is expected

    def test_bool_ops(self):
        t = Comparison("<", Literal(1), Literal(2))
        f = Comparison(">", Literal(1), Literal(2))
        assert eval_expr(BoolOp("and", t, t), ROW, {})
        assert not eval_expr(BoolOp("and", t, f), ROW, {})
        assert eval_expr(BoolOp("or", f, t), ROW, {})
        assert eval_expr(NotOp(f), ROW, {})

    def test_distance_function_on_columns(self):
        expr = FunctionCall(
            "dtw",
            (ColumnRef("trajectory", table="t"), TrajectoryLiteral(((0.0, 0.0), (3.0, 4.0)))),
        )
        assert eval_expr(expr, ROW, {}) == pytest.approx(0.0)

    def test_length_function(self):
        expr = FunctionCall("length", (ColumnRef("trajectory", table="t"),))
        assert eval_expr(expr, ROW, {}) == 2

    def test_abs_function(self):
        assert eval_expr(FunctionCall("abs", (Literal(-3.0),)), ROW, {}) == 3.0

    def test_unknown_function(self):
        with pytest.raises(SQLError):
            eval_expr(FunctionCall("median", (Literal(1.0),)), ROW, {})


class TestExprName:
    def test_column(self):
        assert expr_name(ColumnRef("traj_id", table="t"), 0) == "t.traj_id"
        assert expr_name(ColumnRef("distance"), 0) == "distance"

    def test_function(self):
        assert expr_name(FunctionCall("dtw", ()), 0) == "dtw"

    def test_fallback(self):
        assert expr_name(Literal(1.0), 3) == "col3"


class TestFullScan:
    def test_rows(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0)]), Trajectory(2, [(1, 1)])])
        rows = FullScan(ds, "x").execute({})
        assert [r["x.traj_id"] for r in rows] == [1, 2]
        assert isinstance(rows[0]["x.trajectory"], Trajectory)
