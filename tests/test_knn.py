"""Tests for the KNN extension (the paper's future work, implemented)."""

import numpy as np
import pytest

from repro import DITAConfig, DITAEngine
from repro.core.knn import knn_join, knn_search
from repro.datagen import beijing_like, sample_queries
from repro.distances import get_distance
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def city():
    return beijing_like(80, seed=61)


@pytest.fixture(scope="module")
def engine(city):
    cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)
    return DITAEngine(city, cfg)


def brute_force_knn(data, query, k, distance="dtw"):
    d = get_distance(distance)
    scored = sorted(
        ((t, d.compute(t.points, query.points)) for t in data),
        key=lambda m: (m[1], m[0].traj_id),
    )
    return [(t.traj_id, dist) for t, dist in scored[:k]]


class TestKNNSearch:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, engine, city, k):
        for q in sample_queries(city, 3, seed=5, perturb=0.0003):
            got = [(t.traj_id, d) for t, d in knn_search(engine, q, k)]
            want = brute_force_knn(city, q, k)
            assert [g[0] for g in got] == [w[0] for w in want]
            for (gid, gd), (wid, wd) in zip(got, want):
                assert gd == pytest.approx(wd, abs=1e-9)

    def test_k_larger_than_dataset(self, engine, city):
        q = sample_queries(city, 1, seed=9)[0]
        got = knn_search(engine, q, len(city) + 50)
        assert len(got) == len(city)

    def test_k_one_self(self, engine, city):
        """An exact dataset member's 1-NN is itself at distance 0."""
        q = sample_queries(city, 1, seed=11)[0]
        (t, d) = knn_search(engine, q, 1)[0]
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_invalid_k(self, engine, city):
        q = sample_queries(city, 1, seed=2)[0]
        with pytest.raises(ValueError):
            knn_search(engine, q, -1)

    def test_k_zero(self, engine, city):
        """k == 0 is a valid (empty) request at the serving boundary."""
        q = sample_queries(city, 1, seed=2)[0]
        assert knn_search(engine, q, 0) == []

    def test_sees_buffered_stream_writes(self, city):
        """Regression: knn_search must flush pending deltas before seeding.

        With a tiny base and k larger than the *base* (but not the logical
        dataset), the stale pre-fix path under-returned: the seed/full pool
        only saw the base rows.
        """
        cfg = DITAConfig(
            num_global_partitions=2,
            trie_fanout=4,
            num_pivots=3,
            trie_leaf_capacity=4,
            delta_max_rows=10_000,  # keep writes buffered until flush-on-read
        )
        base = list(city)[:6]
        eng = DITAEngine(base, cfg)
        for t in list(city)[6:20]:
            eng.append_trajectory(t.traj_id, t.points)
        q = sample_queries(city, 1, seed=3)[0]
        got = knn_search(eng, q, 12)
        assert len(got) == 12
        want = brute_force_knn(list(city)[:20], q, 12)
        assert [t.traj_id for t, _ in got] == [w[0] for w in want]

    def test_sorted_output(self, engine, city):
        q = sample_queries(city, 1, seed=13, perturb=0.0005)[0]
        result = knn_search(engine, q, 7)
        dists = [d for _, d in result]
        assert dists == sorted(dists)

    def test_frechet_knn(self, city):
        cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
        fe = DITAEngine(city, cfg, distance="frechet")
        q = sample_queries(city, 1, seed=17, perturb=0.0003)[0]
        got = [t.traj_id for t, _ in knn_search(fe, q, 4)]
        want = [tid for tid, _ in brute_force_knn(city, q, 4, "frechet")]
        assert got == want


class TestKNNJoin:
    def test_matches_per_query_knn(self, engine, city):
        small_cfg = DITAConfig(num_global_partitions=1, trie_fanout=4, num_pivots=2)
        right = DITAEngine(list(city)[:10], small_cfg)
        rows = knn_join(engine, right, 2)
        assert len(rows) == 10 * 2
        for q in list(city)[:10]:
            expected = brute_force_knn(city, q, 2)
            got = [(a, d) for a, b, d in rows if b == q.traj_id]
            assert [g[0] for g in got] == [e[0] for e in expected]

    def test_invalid_k(self, engine):
        with pytest.raises(ValueError):
            knn_join(engine, engine, -3)

    def test_k_zero(self, engine):
        assert knn_join(engine, engine, 0) == []


class TestTieAtThreshold:
    """Regression: the threshold kernels assemble their sums differently
    from the full-distance kernels, so a candidate whose true distance
    exactly equals the current k-th distance could come back ``inf`` from
    the threshold sweep and lose an id tie-break it should win.

    ``T``/``Q`` below is a concrete pair where
    ``dtw_double_direction(T, Q, dtw(T, Q)) == inf`` (found by seeded
    search; the divergence is a ULP in the join-step summation).
    """

    T = np.array(
        [
            [0.6719948779563594, 0.1995154439682133],
            [0.9421131105064978, 0.36511016824482856],
            [0.10549527957022953, 0.6291081515397092],
            [0.9271545530678674, 0.440377154715784],
            [0.9545904936907372, 0.499895813687647],
        ]
    )
    Q = np.array(
        [
            [0.42522862484907553, 0.6202134520153778],
            [0.9950965052353241, 0.9489436749377653],
            [0.4600451393090961, 0.7577288453082914],
        ]
    )

    def test_kernel_divergence_premise(self):
        """The engineered pair really does diverge at the boundary —
        if a kernel change makes this vacuous, pick a new pair."""
        import math

        from repro.distances.dtw import dtw, dtw_double_direction

        d = dtw(self.T, self.Q)
        assert not math.isfinite(dtw_double_direction(self.T, self.Q, d))

    def test_exact_top_k_keeps_exact_ties(self):
        """Two trajectories at exactly the k-th distance: the smaller id
        must win regardless of pool order, matching brute force."""
        from repro.core.knn import _exact_top_k

        query = Trajectory(0, self.Q)
        # identical geometry, distinct ids: an exact distance tie
        a = Trajectory(2, self.T.copy())
        b = Trajectory(10, self.T.copy())
        filler = Trajectory(5, self.Q.copy() + 1.0)  # far away
        data = [a, b, filler]
        engine = DITAEngine(
            data, DITAConfig(num_global_partitions=1, trie_fanout=2, num_pivots=2)
        )
        # b fills the heap first; a then ties b's distance exactly and must
        # displace it on the id tie-break
        pid = engine.partition_pids()[0]
        part = engine.partition(pid)
        pool = [(part, part.row_of(b.traj_id)), (part, part.row_of(a.traj_id))]
        got = [(t.traj_id, d) for t, d in _exact_top_k(engine, query, 1, pool)]
        want = brute_force_knn(data, query, 1)
        assert [g[0] for g in got] == [w[0] for w in want] == [2]
        assert got[0][1] == want[0][1]

    def test_knn_search_matches_brute_force_on_ties(self):
        """End-to-end kNN over a dataset containing exact duplicates."""
        base = beijing_like(30, seed=21)
        trajs = list(base)
        dup_src = trajs[0]
        trajs.append(Trajectory(max(base.ids) + 1, dup_src.points.copy()))
        trajs.append(Trajectory(max(base.ids) + 2, dup_src.points.copy()))
        engine = DITAEngine(
            trajs, DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
        )
        query = Trajectory(-1, dup_src.points.copy())
        got = [(t.traj_id, d) for t, d in knn_search(engine, query, 3)]
        want = brute_force_knn(trajs, query, 3)
        assert [g[0] for g in got] == [w[0] for w in want]


class TestSeedingCost:
    def test_seed_tasks_do_real_work(self, city):
        """Regression: tau-seeding used to run `lambda: None` tasks with a
        side-channel `work=` charge — free under a measure hook that prices
        the body's real execution.  Every simulated task body must now
        return its computation's result."""
        from repro.cluster import Cluster
        from repro.cluster.clock import DEFAULT_UNIT_COST_S

        captured = []

        def spy_measure(fn, work=1.0):
            result = fn()
            captured.append(result)
            return result, float(work) * DEFAULT_UNIT_COST_S

        cluster = Cluster(n_workers=4, measure=spy_measure)
        cfg = DITAConfig(
            num_global_partitions=2, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4
        )
        engine = DITAEngine(city, cfg, cluster=cluster)
        q = sample_queries(city, 1, seed=5)[0]
        knn_search(engine, q, 5)
        assert captured
        assert all(r is not None for r in captured)
