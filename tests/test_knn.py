"""Tests for the KNN extension (the paper's future work, implemented)."""

import numpy as np
import pytest

from repro import DITAConfig, DITAEngine
from repro.core.knn import knn_join, knn_search
from repro.datagen import beijing_like, sample_queries
from repro.distances import get_distance
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def city():
    return beijing_like(80, seed=61)


@pytest.fixture(scope="module")
def engine(city):
    cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)
    return DITAEngine(city, cfg)


def brute_force_knn(data, query, k, distance="dtw"):
    d = get_distance(distance)
    scored = sorted(
        ((t, d.compute(t.points, query.points)) for t in data),
        key=lambda m: (m[1], m[0].traj_id),
    )
    return [(t.traj_id, dist) for t, dist in scored[:k]]


class TestKNNSearch:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, engine, city, k):
        for q in sample_queries(city, 3, seed=5, perturb=0.0003):
            got = [(t.traj_id, d) for t, d in knn_search(engine, q, k)]
            want = brute_force_knn(city, q, k)
            assert [g[0] for g in got] == [w[0] for w in want]
            for (gid, gd), (wid, wd) in zip(got, want):
                assert gd == pytest.approx(wd, abs=1e-9)

    def test_k_larger_than_dataset(self, engine, city):
        q = sample_queries(city, 1, seed=9)[0]
        got = knn_search(engine, q, len(city) + 50)
        assert len(got) == len(city)

    def test_k_one_self(self, engine, city):
        """An exact dataset member's 1-NN is itself at distance 0."""
        q = sample_queries(city, 1, seed=11)[0]
        (t, d) = knn_search(engine, q, 1)[0]
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_invalid_k(self, engine, city):
        q = sample_queries(city, 1, seed=2)[0]
        with pytest.raises(ValueError):
            knn_search(engine, q, 0)

    def test_sorted_output(self, engine, city):
        q = sample_queries(city, 1, seed=13, perturb=0.0005)[0]
        result = knn_search(engine, q, 7)
        dists = [d for _, d in result]
        assert dists == sorted(dists)

    def test_frechet_knn(self, city):
        cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
        fe = DITAEngine(city, cfg, distance="frechet")
        q = sample_queries(city, 1, seed=17, perturb=0.0003)[0]
        got = [t.traj_id for t, _ in knn_search(fe, q, 4)]
        want = [tid for tid, _ in brute_force_knn(city, q, 4, "frechet")]
        assert got == want


class TestKNNJoin:
    def test_matches_per_query_knn(self, engine, city):
        small_cfg = DITAConfig(num_global_partitions=1, trie_fanout=4, num_pivots=2)
        right = DITAEngine(list(city)[:10], small_cfg)
        rows = knn_join(engine, right, 2)
        assert len(rows) == 10 * 2
        for q in list(city)[:10]:
            expected = brute_force_knn(city, q, 2)
            got = [(a, d) for a, b, d in rows if b == q.traj_id]
            assert [g[0] for g in got] == [e[0] for e in expected]

    def test_invalid_k(self, engine):
        with pytest.raises(ValueError):
            knn_join(engine, engine, 0)
