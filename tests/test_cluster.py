"""Tests for the cluster simulator, network model and partitioners."""

import pytest

from repro.cluster import (
    Cluster,
    DITAPartitioner,
    ExecutionReport,
    NetworkModel,
    RandomPartitioner,
    Worker,
)
from repro.datagen import random_walk_dataset


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(bandwidth_bytes_per_s=1000, latency_s=0.1)
        assert net.transfer_time(1000) == pytest.approx(1.1)

    def test_zero_bytes_free(self):
        assert NetworkModel().transfer_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)


class TestWorker:
    def test_lpt_packing(self):
        w = Worker(0, cores=2)
        w.charge_compute(3.0)
        w.charge_compute(1.0)
        w.charge_compute(1.0)
        # 3 on core A; 1+1 on core B -> busy time 3
        assert w.busy_time == pytest.approx(3.0)

    def test_network_adds(self):
        w = Worker(0)
        w.charge_compute(1.0)
        w.charge_network(0.5)
        assert w.busy_time == pytest.approx(1.5)

    def test_reset(self):
        w = Worker(0, cores=2)
        w.charge_compute(5.0)
        w.reset()
        assert w.busy_time == 0.0


class TestCluster:
    def test_placement_round_robin(self):
        c = Cluster(n_workers=3)
        c.place_partitions([0, 1, 2, 3, 4])
        assert c.worker_of(0) == 0
        assert c.worker_of(3) == 0
        assert c.worker_of(4) == 1

    def test_unplaced_partition_raises(self):
        c = Cluster(n_workers=2)
        with pytest.raises(KeyError):
            c.worker_of(7)

    def test_explicit_placement_validation(self):
        c = Cluster(n_workers=2)
        with pytest.raises(ValueError):
            c.place_partition(0, 5)

    def test_run_local_charges_owner(self):
        c = Cluster(n_workers=2)
        c.place_partitions([0, 1])
        result = c.run_local(1, lambda: sum(range(1000)))
        assert result == 499500
        report = c.report()
        assert report.worker_times[1] > 0
        assert report.worker_times[0] == 0
        assert report.tasks == 1

    def test_ship_colocated_free(self):
        c = Cluster(n_workers=1)
        c.place_partitions([0, 1])
        assert c.ship(0, 1, 10_000) == 0.0

    def test_ship_cross_worker_costs(self):
        c = Cluster(n_workers=2, network=NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=0))
        c.place_partitions([0, 1])
        t = c.ship(0, 1, 1_000_000)
        assert t == pytest.approx(1.0)
        report = c.report()
        assert report.total_network_bytes == 1_000_000
        assert report.worker_times[0] == pytest.approx(1.0)
        assert report.worker_times[1] == pytest.approx(1.0)

    def test_charge_compute_validation(self):
        c = Cluster(n_workers=1)
        c.place_partitions([0])
        with pytest.raises(ValueError):
            c.charge_compute(0, -1.0)

    def test_reset_clocks(self):
        c = Cluster(n_workers=1)
        c.place_partitions([0])
        c.charge_compute(0, 1.0)
        c.reset_clocks()
        assert c.report().makespan == 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(1, cores_per_worker=0)

    def test_total_cores(self):
        assert Cluster(4, cores_per_worker=8).total_cores == 32


class TestResetLeaks:
    """Back-to-back experiments on one cluster must start from zero:
    ``reset_clocks`` has to clear the per-core heap state, the network
    counters and the report counters, or the second job's simulated times
    silently include the first job's (the leak these tests pin down)."""

    @staticmethod
    def _job(c):
        for pid in (0, 1, 2, 0, 1):
            c.run_local(pid, lambda: None, work=1.5)
        c.ship(0, 1, 500_000)
        c.ship(1, 2, 250_000)
        return c.report().to_dict()

    def test_back_to_back_jobs_byte_identical(self):
        import json

        c = Cluster(n_workers=3, cores_per_worker=2)
        c.place_partitions([0, 1, 2])
        first = json.dumps(self._job(c), sort_keys=True)
        c.reset_clocks()
        second = json.dumps(self._job(c), sort_keys=True)
        fresh = Cluster(n_workers=3, cores_per_worker=2)
        fresh.place_partitions([0, 1, 2])
        fresh_run = json.dumps(self._job(fresh), sort_keys=True)
        assert second == first == fresh_run

    def test_reset_clears_network_and_counters(self):
        c = Cluster(n_workers=2)
        c.place_partitions([0, 1])
        c.run_local(0, lambda: None)
        c.ship(0, 1, 1_000_000)
        c.reset_clocks()
        rep = c.report()
        assert rep.makespan == 0.0
        assert rep.total_network_s == 0.0
        assert rep.total_network_bytes == 0
        assert rep.total_compute_s == 0.0
        assert rep.tasks == 0
        assert all(w.network_s == 0.0 for w in c.workers)

    def test_reset_clears_core_heap_state(self):
        # an unbalanced first job must not skew the second job's packing
        c = Cluster(n_workers=1, cores_per_worker=2)
        c.place_partitions([0])
        c.charge_compute(0, 10.0)
        c.reset_clocks()
        c.charge_compute(0, 1.0)
        c.charge_compute(0, 2.0)
        assert c.workers[0].core_clocks == [1.0, 2.0]


class TestExecutionReport:
    def test_makespan_and_ratio(self):
        r = ExecutionReport(worker_times={0: 2.0, 1: 4.0})
        assert r.makespan == 4.0
        assert r.load_ratio == 2.0

    def test_empty(self):
        r = ExecutionReport()
        assert r.makespan == 0.0
        assert r.load_ratio == 1.0

    def test_zero_min_ratio(self):
        r = ExecutionReport(worker_times={0: 0.0, 1: 4.0})
        assert r.load_ratio == float("inf")

    def test_merge(self):
        a = ExecutionReport(worker_times={0: 1.0}, total_compute_s=1.0, tasks=1)
        b = ExecutionReport(worker_times={0: 2.0, 1: 1.0}, total_network_bytes=10, tasks=2)
        a.merge(b)
        assert a.worker_times == {0: 3.0, 1: 1.0}
        assert a.tasks == 3
        assert a.total_network_bytes == 10


class TestPartitioners:
    def test_dita_partitioner_covers(self):
        data = list(random_walk_dataset(50, seed=9))
        parts = DITAPartitioner(3).partition(data)
        ids = sorted(t.traj_id for p in parts for t in p)
        assert ids == sorted(t.traj_id for t in data)
        assert len(parts) <= 9

    def test_random_partitioner_covers(self):
        data = list(random_walk_dataset(50, seed=9))
        parts = RandomPartitioner(8, seed=1).partition(data)
        ids = sorted(t.traj_id for p in parts for t in p)
        assert ids == sorted(t.traj_id for t in data)

    def test_random_partitioner_deterministic(self):
        data = list(random_walk_dataset(30, seed=9))
        a = RandomPartitioner(4, seed=5).partition(data)
        b = RandomPartitioner(4, seed=5).partition(data)
        assert [[t.traj_id for t in p] for p in a] == [[t.traj_id for t in p] for p in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            DITAPartitioner(0)
        with pytest.raises(ValueError):
            RandomPartitioner(0)


class TestWorkerHeapPacking:
    """charge_compute uses a heap of core clocks; packing must stay
    byte-identical to the linear min-scan it replaced (ties to the
    smallest core index, same float additions in the same order)."""

    def test_matches_min_scan_reference(self):
        import numpy as np

        rng = np.random.default_rng(41)
        w = Worker(0, cores=7)
        ref = [0.0] * 7
        for _ in range(400):
            s = float(rng.uniform(0.0, 2.0))
            w.charge_compute(s)
            i = min(range(7), key=lambda k: ref[k])
            ref[i] += s
        assert w.core_clocks == ref  # exact float equality, not approx

    def test_ties_go_to_lowest_core_index(self):
        w = Worker(0, cores=3)
        for _ in range(3):
            w.charge_compute(1.0)
        assert w.core_clocks == [1.0, 1.0, 1.0]
        w.charge_compute(0.5)
        assert w.core_clocks == [1.5, 1.0, 1.0]

    def test_reset_rebuilds_heap(self):
        w = Worker(0, cores=2)
        w.charge_compute(4.0)
        w.reset()
        w.charge_compute(1.0)
        w.charge_compute(2.0)
        assert w.core_clocks == [1.0, 2.0]
        assert w.busy_time == 2.0
