"""Property tests: dataset serialization round-trips byte-identically.

``save -> load -> save`` must reproduce the file byte for byte — the
loaders parse exact int64 ids and shortest-repr float64 coordinates, so
no value drifts through a round trip.  CSV loads come back ordered by
trajectory id, so byte identity is asserted for id-sorted datasets (the
format's canonical order); JSON-lines preserves file order for any id
order.  Covers empty datasets, 1-point trajectories and ndim >= 3.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trajectory import (
    Trajectory,
    TrajectoryDataset,
    load_csv,
    load_csv_columnar,
    load_jsonl,
    load_jsonl_columnar,
    save_csv,
    save_jsonl,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def datasets(draw):
    ndim = draw(st.integers(1, 4))
    n = draw(st.integers(0, 6))
    ids = sorted(draw(st.sets(st.integers(-(10**9), 10**9), min_size=n, max_size=n)))
    trajs = []
    for tid in ids:
        npts = draw(st.integers(1, 5))
        pts = draw(
            st.lists(
                st.lists(finite, min_size=ndim, max_size=ndim),
                min_size=npts,
                max_size=npts,
            )
        )
        trajs.append(Trajectory(tid, np.asarray(pts, dtype=np.float64).reshape(npts, ndim)))
    return TrajectoryDataset(trajs)


def _same_dataset(a: TrajectoryDataset, b: TrajectoryDataset) -> None:
    assert sorted(t.traj_id for t in a) == sorted(t.traj_id for t in b)
    for t in a:
        assert np.array_equal(t.points, b.by_id(t.traj_id).points)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(datasets())
def test_csv_save_load_save_is_byte_identical(tmp_path, data):
    p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
    save_csv(data, p1)
    loaded = load_csv(p1)
    _same_dataset(data, loaded)
    save_csv(loaded, p2)
    assert p1.read_bytes() == p2.read_bytes()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(datasets())
def test_jsonl_save_load_save_is_byte_identical(tmp_path, data):
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    save_jsonl(data, p1)
    loaded = load_jsonl(p1)
    _same_dataset(data, loaded)
    assert [t.traj_id for t in loaded] == [t.traj_id for t in data]  # file order
    save_jsonl(loaded, p2)
    assert p1.read_bytes() == p2.read_bytes()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(datasets())
def test_columnar_loaders_match_object_loaders(tmp_path, data):
    pc, pj = tmp_path / "a.csv", tmp_path / "a.jsonl"
    save_csv(data, pc)
    save_jsonl(data, pj)
    for block in (load_csv_columnar(pc), load_jsonl_columnar(pj)):
        assert block.traj_ids.dtype == np.int64
        assert block.point_coords.dtype == np.float64
        assert sorted(block.ids) == sorted(t.traj_id for t in data)
        for t in data:
            assert np.array_equal(block.points(block.row_of(t.traj_id)), t.points)


def test_empty_dataset_round_trips(tmp_path):
    empty = TrajectoryDataset([])
    for save, load, name in (
        (save_csv, load_csv, "e.csv"),
        (save_jsonl, load_jsonl, "e.jsonl"),
    ):
        p1, p2 = tmp_path / name, tmp_path / ("2" + name)
        save(empty, p1)
        loaded = load(p1)
        assert len(loaded) == 0
        save(loaded, p2)
        assert p1.read_bytes() == p2.read_bytes()


def test_single_point_3d_round_trips(tmp_path):
    data = TrajectoryDataset(
        [
            Trajectory(1, [(0.1, -2.5, 1e300)]),
            Trajectory(2, [(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)]),
        ]
    )
    for save, load, name in (
        (save_csv, load_csv, "d.csv"),
        (save_jsonl, load_jsonl, "d.jsonl"),
    ):
        p1, p2 = tmp_path / name, tmp_path / ("2" + name)
        save(data, p1)
        loaded = load(p1)
        _same_dataset(data, loaded)
        save(loaded, p2)
        assert p1.read_bytes() == p2.read_bytes()
