"""Unit tests for the per-distance index adapters (Appendix A)."""

import numpy as np
import pytest

from repro.core.adapters import (
    DTWAdapter,
    EDRAdapter,
    ERPAdapter,
    FIRST,
    LAST,
    PIVOT,
    FilterState,
    FrechetAdapter,
    LCSSAdapter,
    get_adapter,
)
from repro.geometry.mbr import MBR

Q = np.array([(0, 0), (1, 0), (2, 0), (3, 0)], float)


class TestFactory:
    def test_known_names(self):
        for name in ("dtw", "frechet", "hausdorff", "edr", "lcss", "erp"):
            adapter = get_adapter(name)
            assert adapter.distance_name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_adapter("sspd")

    def test_parameters_forwarded(self):
        a = get_adapter("edr", epsilon=0.5)
        assert a.epsilon == 0.5
        b = get_adapter("lcss", epsilon=0.2, delta=7)
        assert b.delta == 7


class TestDTWAdapter:
    def test_first_level_subtracts(self):
        a = DTWAdapter(use_suffix_pruning=False)
        state = a.initial_state(Q, 10.0)
        mbr = MBR((0, 1), (0, 1))  # dist 1 from q1=(0,0)
        out = a.visit(state, FIRST, mbr, Q)
        assert out is not None
        assert out.remaining == pytest.approx(9.0, abs=1e-6)

    def test_prunes_beyond_budget(self):
        a = DTWAdapter()
        state = a.initial_state(Q, 0.5)
        mbr = MBR((0, 1), (0, 1))
        assert a.visit(state, FIRST, mbr, Q) is None

    def test_last_level_sets_tau1(self):
        a = DTWAdapter(use_suffix_pruning=True)
        state = a.initial_state(Q, 10.0)
        mbr = MBR((3, 1), (3, 1))  # dist 1 from qn=(3,0)
        out = a.visit(state, LAST, mbr, Q)
        assert out.tau1 == pytest.approx(9.0, abs=1e-6)

    def test_pivot_suffix_drop(self):
        a = DTWAdapter(use_suffix_pruning=True)
        # tau1 small: first two query points are too far from the pivot MBR
        state = FilterState(remaining=1.5, q_start=0, tau1=1.5)
        mbr = MBR((2.5, 0), (3.5, 0.0))  # near the tail of Q only
        out = a.visit(state, PIVOT, mbr, Q)
        assert out is not None
        assert out.q_start >= 1  # prefix dropped

    def test_pivot_empty_suffix_prunes(self):
        a = DTWAdapter()
        state = FilterState(remaining=1.0, q_start=4, tau1=1.0)
        out = a.visit(state, PIVOT, MBR((0, 0), (1, 1)), Q)
        assert out is None


class TestFrechetAdapter:
    def test_never_subtracts(self):
        a = FrechetAdapter()
        state = a.initial_state(Q, 2.0)
        mbr = MBR((0, 1), (0, 1))
        out = a.visit(state, FIRST, mbr, Q)
        assert out.remaining == state.remaining

    def test_prunes_on_exceed(self):
        a = FrechetAdapter()
        state = a.initial_state(Q, 0.5)
        assert a.visit(state, FIRST, MBR((0, 1), (0, 1)), Q) is None

    def test_pivot_checks_whole_suffix(self):
        a = FrechetAdapter(use_suffix_pruning=False)
        state = a.initial_state(Q, 0.5)
        far = MBR((10, 10), (11, 11))
        assert a.visit(state, PIVOT, far, Q) is None


class TestEDRAdapter:
    def test_within_epsilon_free(self):
        a = EDRAdapter(epsilon=1.0)
        state = a.initial_state(Q, 2)
        near = MBR((0, 0.5), (1, 0.5))
        out = a.visit(state, PIVOT, near, Q)
        assert out.remaining == state.remaining

    def test_beyond_epsilon_costs_one_edit(self):
        a = EDRAdapter(epsilon=0.1)
        state = a.initial_state(Q, 2)
        far = MBR((10, 10), (10, 10))
        out = a.visit(state, PIVOT, far, Q)
        assert out.remaining == pytest.approx(state.remaining - 1)

    def test_budget_exhaustion_prunes(self):
        a = EDRAdapter(epsilon=0.1)
        state = FilterState(remaining=0)
        far = MBR((10, 10), (10, 10))
        assert a.visit(state, PIVOT, far, Q) is None

    def test_verifier_disables_geometric_filters(self):
        v = EDRAdapter().make_verifier()
        assert not v.use_mbr_coverage
        assert not v.use_cell_filter


class TestLCSSAdapter:
    def test_decrement_only_when_node_short(self):
        a = LCSSAdapter(epsilon=0.1)
        far = MBR((10, 10), (10, 10))
        state = a.initial_state(Q, 2)
        # node longer than the query: cannot decrement soundly
        out = a.visit(state, PIVOT, far, Q, node_max_len=100)
        assert out.remaining == state.remaining
        # node at most as long as the query: decrement applies
        out = a.visit(state, PIVOT, far, Q, node_max_len=3)
        assert out.remaining == pytest.approx(state.remaining - 1)

    def test_unknown_length_passes_through(self):
        a = LCSSAdapter(epsilon=0.1)
        state = a.initial_state(Q, 2)
        out = a.visit(state, PIVOT, MBR((10, 10), (10, 10)), Q, node_max_len=None)
        assert out.remaining == state.remaining


class TestERPAdapter:
    def test_gap_point_caps_cost(self):
        """A point can always be gapped, so the level cost never exceeds its
        distance to the gap point."""
        a = ERPAdapter(gap=(0.0, 0.0))
        state = a.initial_state(Q, 100.0)
        far = MBR((0, 5), (0, 5))  # 5 from gap, farther from Q
        out = a.visit(state, PIVOT, far, Q)
        assert out.remaining >= 100.0 - 5 - 1e-9

    def test_suffix_pruning_forced_off(self):
        assert not ERPAdapter(use_suffix_pruning=True).use_suffix_pruning
