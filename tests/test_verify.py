"""Tests for the verification pipeline (Section 5.3.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.verify import (
    VerificationData,
    Verifier,
    VerifyStats,
    cell_bound_dtw,
    cell_bound_frechet,
    mbr_coverage_ok,
)
from repro.distances.dtw import dtw, dtw_double_direction
from repro.distances.frechet import frechet, frechet_threshold
from repro.geometry.cell import CellSet
from repro.trajectory import Trajectory

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_len=1, max_len=10):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


class TestMBRCoverage:
    @settings(max_examples=80)
    @given(trajectories(), trajectories(), st.floats(0.1, 30))
    def test_lemma_5_4_no_false_negatives(self, t, q, tau):
        """Similar pairs always survive the coverage filter."""
        if dtw(t, q) <= tau:
            tt = Trajectory(0, t)
            qq = Trajectory(1, q)
            assert mbr_coverage_ok(tt.mbr, qq.mbr, tau)

    @settings(max_examples=80)
    @given(trajectories(), trajectories(), st.floats(0.1, 30))
    def test_lemma_5_4_frechet(self, t, q, tau):
        if frechet(t, q) <= tau:
            assert mbr_coverage_ok(Trajectory(0, t).mbr, Trajectory(1, q).mbr, tau)

    def test_example_5_5(self):
        """Example 5.5: T5 and its Q fail coverage at tau = 3 even though
        OPAMD alone would not prune them."""
        t5 = Trajectory(5, [(0, 4), (0, 5), (3, 7), (3, 3), (7, 5)])
        q = Trajectory(0, [(0, 4), (0, 5), (3, 7), (3, 9), (3, 11), (3, 3), (7, 5)])
        assert not mbr_coverage_ok(t5.mbr, q.mbr, 3.0)


class TestCellBounds:
    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_dtw_bound_sound(self, t, q):
        ct = CellSet.from_points(t, 1.0)
        cq = CellSet.from_points(q, 1.0)
        assert cell_bound_dtw(ct, cq) <= dtw(t, q) + 1e-6

    @settings(max_examples=60)
    @given(trajectories(), trajectories())
    def test_frechet_bound_sound(self, t, q):
        ct = CellSet.from_points(t, 1.0)
        cq = CellSet.from_points(q, 1.0)
        assert cell_bound_frechet(ct, cq) <= frechet(t, q) + 1e-6


class TestVerifier:
    def _data(self, t, cell=1.0):
        return VerificationData.of(t, cell)

    def test_exact_path(self):
        t = Trajectory(0, [(0, 0), (1, 1)])
        q = Trajectory(1, [(0, 0), (1, 1)])
        v = Verifier(dtw_double_direction)
        assert v.verify(t, q, 0.5, self._data(t), self._data(q)) == 0.0

    def test_mbr_prune_path(self):
        t = Trajectory(0, [(0, 0), (1, 1)])
        q = Trajectory(1, [(50, 50), (51, 51)])
        stats = VerifyStats()
        v = Verifier(dtw_double_direction)
        assert v.verify(t, q, 1.0, self._data(t), self._data(q), stats) == math.inf
        assert stats.pruned_by_mbr == 1
        assert stats.exact_computed == 0

    def test_cell_prune_path(self):
        # overlapping MBRs but points consistently ~2 apart: MBR coverage
        # passes with tau big enough, cells catch the accumulated cost
        t = Trajectory(0, [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0)])
        q = Trajectory(1, [(0, 2), (1, 2), (2, 2), (3, 2), (4, 2), (5, 2)])
        stats = VerifyStats()
        v = Verifier(dtw_double_direction, use_mbr_coverage=True)
        d = v.verify(t, q, 3.0, self._data(t, 0.5), self._data(q, 0.5), stats)
        assert d == math.inf
        assert stats.pruned_by_cells == 1

    def test_stats_accept(self):
        t = Trajectory(0, [(0, 0), (1, 1)])
        stats = VerifyStats()
        v = Verifier(dtw_double_direction)
        v.verify(t, t, 0.1, self._data(t), self._data(t), stats)
        assert stats.accepted == 1

    def test_stats_merge(self):
        a = VerifyStats(pairs=1, accepted=1)
        b = VerifyStats(pairs=2, pruned_by_mbr=1)
        a.merge(b)
        assert a.pairs == 3 and a.pruned_by_mbr == 1 and a.accepted == 1

    def test_filters_can_be_disabled(self):
        t = Trajectory(0, [(0, 0), (1, 1)])
        q = Trajectory(1, [(50, 50), (51, 51)])
        stats = VerifyStats()
        v = Verifier(dtw_double_direction, use_mbr_coverage=False, use_cell_filter=False)
        assert v.verify(t, q, 1.0, self._data(t), self._data(q), stats) == math.inf
        assert stats.exact_computed == 1

    @settings(max_examples=80)
    @given(trajectories(), trajectories(), st.floats(0.1, 40))
    def test_pipeline_equals_exact(self, t_pts, q_pts, tau):
        """The staged pipeline never changes the verdict (DTW)."""
        t = Trajectory(0, t_pts)
        q = Trajectory(1, q_pts)
        v = Verifier(dtw_double_direction)
        got = v.verify(t, q, tau, self._data(t), self._data(q))
        d = dtw(t_pts, q_pts)
        if d <= tau:
            assert got == pytest.approx(d, rel=1e-9, abs=1e-9)
        else:
            assert got == math.inf

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), st.floats(0.1, 20))
    def test_pipeline_equals_exact_frechet(self, t_pts, q_pts, tau):
        t = Trajectory(0, t_pts)
        q = Trajectory(1, q_pts)
        v = Verifier(frechet_threshold, cell_bound_fn=cell_bound_frechet)
        got = v.verify(t, q, tau, self._data(t), self._data(q))
        f = frechet(t_pts, q_pts)
        if f <= tau:
            assert got == pytest.approx(f, rel=1e-9, abs=1e-9)
        else:
            assert got == math.inf
