"""Tests for the observability layer: tracer, metrics registry, per-stage
breakdown, and the accounting identities tying them to the simulator."""

import json

import pytest

from repro import DITAConfig, DITAEngine, FaultPlan, RecoveryPolicy
from repro.cluster.simulator import Cluster
from repro.core.join import JoinStats
from repro.core.knn import knn_search
from repro.core.search import SearchStats
from repro.datagen import beijing_like, sample_queries
from repro.distances import available_distances
from repro.obs import (
    MetricsRegistry,
    Tracer,
    accounted_spans,
    stage_rows,
    worker_span_seconds,
)


@pytest.fixture(scope="module")
def city():
    return beijing_like(80, seed=17)


@pytest.fixture(scope="module")
def query(city):
    return sample_queries(city, 1, seed=4)[0]


def traced_engine(city, **cfg):
    config = DITAConfig(use_tracing=True, **cfg)
    return DITAEngine(city, config)


# --------------------------------------------------------------------- #
# tracer unit tests
# --------------------------------------------------------------------- #


class TestTracer:
    def test_record_parents_to_open_job(self):
        tr = Tracer()
        with tr.job("search", tau=0.5) as job_id:
            tr.record("task", "task", 0, 0.0, 1.0)
        job = tr.spans[0]
        task = tr.spans[1]
        assert task.parent_id == job_id
        assert job.cat == "job"
        assert job.t0 == 0.0 and job.t1 == 1.0
        assert job.seconds == 1.0

    def test_job_envelope_excludes_stage_seconds(self):
        tr = Tracer()
        with tr.job("j"):
            s = tr.record("task", "task", 0, 0.0, 2.0)
            tr.subdivide(s, [("a", 1.0, None), ("b", 3.0, None)])
        job = tr.spans[0]
        assert job.seconds == 2.0  # stages are views, not extra time

    def test_subdivide_tiles_parent_exactly(self):
        tr = Tracer()
        s = tr.record("task", "task", 2, 1.0, 4.0, seconds=3.0)
        kids = tr.subdivide(s, [("a", 1.0, None), ("b", 2.0, None)])
        assert kids[0].t0 == s.t0
        assert kids[-1].t1 == s.t1  # last boundary pinned, no float gap
        assert sum(k.seconds for k in kids) == s.seconds
        assert all(k.cat == "stage" and k.worker == 2 for k in kids)

    def test_subdivide_zero_weight_records_nothing(self):
        tr = Tracer()
        s = tr.record("task", "task", 0, 0.0, 1.0)
        assert tr.subdivide(s, [("a", 0.0, None)]) == []
        assert len(tr.spans) == 1

    def test_clear_resets_ids(self):
        tr = Tracer()
        tr.record("x", "task", 0, 0.0, 1.0)
        tr.clear()
        assert tr.spans == []
        assert tr.record("y", "task", 0, 0.0, 1.0).span_id == 0

    def test_end_wrong_span_rejected(self):
        tr = Tracer()
        tr.begin("outer")
        inner = tr.begin("inner")
        with pytest.raises(ValueError):
            tr.end(inner + 1)

    def test_export_json_round_trips(self):
        tr = Tracer()
        tr.record("task", "task", 1, 0.0, 0.5, args={"work": 3, "f": 0.1})
        doc = json.loads(tr.export_json())
        (ev,) = doc["spans"]
        assert ev["name"] == "task"
        assert ev["t1"] == repr(0.5)
        assert ev["args"]["f"] == repr(0.1)

    def test_export_chrome_lanes(self):
        tr = Tracer()
        with tr.job("j"):
            tr.record("t", "task", 1, 0.0, 1.0)
            tr.record("s", "net", 1, 0.0, 0.5)
        events = json.loads(tr.export_chrome())["traceEvents"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids == {"j": "driver", "t": "w1", "s": "w1.net"}
        assert all(e["ph"] == "X" for e in events)


# --------------------------------------------------------------------- #
# registry unit tests
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.counter("a")
        r.counter("a", 4)
        assert r.value("a") == 5
        assert r.value("missing") == 0

    def test_snapshot_sorted_and_typed(self):
        r = MetricsRegistry()
        r.counter("z", 1)
        r.gauge("a", 0.5)
        r.observe("h", 1.0)
        r.observe("h", 3.0)
        snap = r.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["counter.z"] == 1
        assert snap["gauge.a"] == repr(0.5)
        assert snap["hist.h.count"] == 2
        assert snap["hist.h.min"] == repr(1.0)
        assert snap["hist.h.max"] == repr(3.0)

    def test_absorb_nested_dataclass(self):
        r = MetricsRegistry()
        stats = SearchStats()
        stats.relevant_partitions = 2
        stats.filter.candidates = 7
        stats.verify.accepted = 3
        r.absorb("search", stats)
        assert r.value("search.relevant_partitions") == 2
        assert r.value("search.filter.candidates") == 7
        assert r.value("search.verify.accepted") == 3

    def test_registry_counters_equal_legacy_dataclasses(self, city, query):
        """The registry view of a run equals the legacy stats dataclasses."""
        engine = traced_engine(city)
        stats = SearchStats()
        engine.search(query, tau=0.01, stats=stats)
        m = engine.metrics
        assert m.value("search.filter.candidates") == stats.filter.candidates
        assert m.value("search.verify.pairs") == stats.verify.pairs
        assert m.value("search.verify.accepted") == stats.verify.accepted
        assert m.value("search.relevant_partitions") == stats.relevant_partitions

        engine.metrics.clear()
        engine.cluster.reset_clocks()
        js = JoinStats()
        engine.join(engine, tau=0.005, stats=js)
        assert m.value("join.candidate_pairs") == js.candidate_pairs
        assert m.value("join.verified_pairs") == js.verified_pairs
        assert m.value("join.result_pairs") == js.result_pairs

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", 1)
        b.counter("x", 2)
        b.gauge("g", 1.5)
        b.observe("h", 2.0)
        a.merge(b)
        assert a.value("x") == 3
        assert a.snapshot()["gauge.g"] == repr(1.5)


# --------------------------------------------------------------------- #
# accounting identities against the simulator
# --------------------------------------------------------------------- #


def assert_span_accounting(cluster):
    """Exact identities between spans and the ExecutionReport.

    With single-core workers the compute spans on one worker are laid out
    back to back on its core clock and the net spans on its network lane,
    so ``busy_time = max(compute t1) + max(net t1)`` holds with float
    equality (not just approximately).
    """
    spans = cluster.tracer.spans
    report = cluster.report()
    per_worker = worker_span_seconds(spans)
    for wid, busy in report.worker_times.items():
        max_compute = max(
            (s.t1 for s in accounted_spans(spans) if s.worker == wid and s.cat != "net"),
            default=0.0,
        )
        max_net = max(
            (s.t1 for s in accounted_spans(spans) if s.worker == wid and s.cat == "net"),
            default=0.0,
        )
        assert max_compute + max_net == busy
        # sum of exact charges reconciles too (addition-order tolerance)
        assert per_worker.get(wid, 0.0) == pytest.approx(busy, abs=1e-9)
    untraced = set(per_worker) - set(report.worker_times)
    assert not untraced


class TestAccountingIdentity:
    def test_search(self, city, query):
        engine = traced_engine(city)
        engine.search(query, tau=0.01)
        assert_span_accounting(engine.cluster)

    def test_join(self, city):
        engine = traced_engine(city)
        engine.join(engine, tau=0.005)
        assert_span_accounting(engine.cluster)

    def test_knn(self, city, query):
        engine = traced_engine(city)
        knn_search(engine, query, k=5)
        assert_span_accounting(engine.cluster)

    def test_under_faults(self, city, query):
        cluster = Cluster(
            n_workers=4,
            faults=FaultPlan(seed=3, task_failure_rate=0.4, message_drop_rate=0.15),
            recovery=RecoveryPolicy(max_retries=50),
        )
        engine = DITAEngine(city, DITAConfig(use_tracing=True), cluster=cluster)
        engine.join(engine, tau=0.005)
        spans = engine.cluster.tracer.spans
        assert any(s.cat == "fault" for s in spans)
        assert_span_accounting(engine.cluster)

    def test_stage_rows_tile_their_task(self, city, query):
        engine = traced_engine(city)
        engine.search(query, tau=0.01)
        rows = stage_rows(engine.cluster.tracer.spans)
        parents = [r for r in rows if r["indent"] == 0]
        stages = [r for r in rows if r["indent"] == 1]
        assert parents and stages
        assert sum(r["seconds"] for r in stages) == pytest.approx(
            sum(r["seconds"] for r in parents), abs=1e-12
        )


# --------------------------------------------------------------------- #
# determinism + zero-interference
# --------------------------------------------------------------------- #


def run_all(engine, city, query):
    search = engine.search(query, tau=0.01)
    engine.cluster.reset_clocks()
    nn = knn_search(engine, query, k=5)
    engine.cluster.reset_clocks()
    pairs = engine.join(engine, tau=0.005)
    return search, nn, pairs


class TestTraceDeterminism:
    def test_same_seed_exports_byte_identical(self, city, query):
        outputs = []
        for _ in range(2):
            engine = traced_engine(city)
            engine.search(query, tau=0.01)
            engine.join(engine, tau=0.005)
            outputs.append(
                (
                    engine.cluster.tracer.export_json(),
                    engine.cluster.tracer.export_chrome(),
                    engine.metrics.to_json(),
                )
            )
        assert outputs[0] == outputs[1]

    @pytest.mark.parametrize("distance", sorted(available_distances()))
    def test_tracing_does_not_change_results(self, city, query, distance):
        """Traced and untraced runs of search/knn/join agree bit-for-bit
        on every adapter."""
        plain = DITAEngine(city, DITAConfig(), distance=distance)
        traced = DITAEngine(city, DITAConfig(use_tracing=True), distance=distance)
        tau = 0.01 if distance not in ("edr", "lcss") else 5.0

        def key(matches):
            return sorted((t.traj_id, d) for t, d in matches)

        q_plain = plain.search(query, tau=tau)
        q_traced = traced.search(query, tau=tau)
        assert key(q_plain) == key(q_traced)

        nn_plain = [(t.traj_id, d) for t, d in knn_search(plain, query, 5)]
        nn_traced = [(t.traj_id, d) for t, d in knn_search(traced, query, 5)]
        assert nn_plain == nn_traced

        j_plain = sorted(plain.join(plain, tau=tau / 2))
        j_traced = sorted(traced.join(traced, tau=tau / 2))
        assert j_plain == j_traced

    def test_untraced_engine_records_nothing(self, city, query):
        engine = DITAEngine(city, DITAConfig())
        engine.search(query, tau=0.01)
        assert engine.cluster.tracer is None
        assert engine.metrics is None

    def test_reset_clocks_clears_trace(self, city, query):
        engine = traced_engine(city)
        engine.search(query, tau=0.01)
        assert engine.cluster.tracer.spans
        engine.cluster.reset_clocks()
        assert engine.cluster.tracer.spans == []
