"""Tests for the Hausdorff distance and its index adapter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_join, brute_force_search
from repro import DITAConfig, DITAEngine
from repro.datagen import citywide_dataset, sample_queries
from repro.distances import get_distance, hausdorff, hausdorff_threshold
from repro.distances.frechet import frechet

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_len=1, max_len=9):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


T1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
T3 = np.array([(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)], float)


class TestHausdorff:
    def test_known_value(self):
        assert hausdorff(T1, T3) == pytest.approx(math.sqrt(2), abs=1e-9)

    def test_identity_symmetry(self):
        assert hausdorff(T1, T1) == 0.0
        assert hausdorff(T1, T3) == hausdorff(T3, T1)

    def test_at_most_frechet(self):
        """Hausdorff drops the ordering constraint, so H <= Frechet."""
        assert hausdorff(T1, T3) <= frechet(T1, T3) + 1e-12

    def test_order_insensitive(self):
        assert hausdorff(T1[::-1].copy(), T3) == pytest.approx(hausdorff(T1, T3))

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), trajectories())
    def test_triangle_inequality(self, a, b, c):
        assert hausdorff(a, c) <= hausdorff(a, b) + hausdorff(b, c) + 1e-9

    @settings(max_examples=60)
    @given(trajectories(), trajectories(), st.floats(0.1, 40))
    def test_threshold_agrees(self, t, q, tau):
        h = hausdorff(t, q)
        ht = hausdorff_threshold(t, q, tau)
        if h <= tau:
            assert ht == pytest.approx(h)
        else:
            assert ht == math.inf

    def test_registry(self):
        d = get_distance("hausdorff")
        assert d.is_metric
        assert not d.accumulates


class TestHausdorffEngine:
    @pytest.fixture(scope="class")
    def city(self):
        return citywide_dataset(70, seed=41)

    @pytest.fixture(scope="class")
    def engine(self, city):
        cfg = DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3)
        return DITAEngine(city, cfg, distance="hausdorff")

    def test_search_matches_brute_force(self, engine, city):
        d = get_distance("hausdorff")
        for q in sample_queries(city, 3, seed=3, perturb=0.0002):
            assert engine.search_ids(q, 0.001) == brute_force_search(city, d, q, 0.001)

    def test_join_matches_brute_force(self, engine, city):
        d = get_distance("hausdorff")
        got = sorted((a, b) for a, b, _ in engine.join(engine, 0.0008))
        assert got == brute_force_join(city, city, d, 0.0008)

    def test_reversed_trajectory_found(self, engine, city):
        """Order insensitivity end-to-end: a reversed copy of a dataset
        member matches it at tau ~ jitter scale."""
        from repro.trajectory import Trajectory

        member = list(city)[0]
        rev = Trajectory(-1, member.points[::-1].copy())
        assert member.traj_id in engine.search_ids(rev, 1e-9)
