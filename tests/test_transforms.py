"""Tests for trajectory preprocessing transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trajectory import (
    Trajectory,
    TrajectoryDataset,
    dataset_bounds,
    normalize_unit_box,
    resample,
    scale,
    translate,
)

coords = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw):
    n = draw(st.integers(1, 12))
    return Trajectory(0, np.asarray([[draw(coords), draw(coords)] for _ in range(n)]))


class TestResample:
    def test_exact_count_and_endpoints(self):
        t = Trajectory(1, [(0, 0), (1, 0), (2, 0)])
        r = resample(t, 7)
        assert len(r) == 7
        assert r.first.tolist() == [0, 0]
        assert r.last.tolist() == [2, 0]

    def test_uniform_spacing_on_line(self):
        t = Trajectory(1, [(0, 0), (10, 0)])
        r = resample(t, 6)
        gaps = np.diff(r.points[:, 0])
        assert np.allclose(gaps, 2.0)

    def test_single_point(self):
        r = resample(Trajectory(1, [(3, 3)]), 5)
        assert len(r) == 5
        assert np.allclose(r.points, 3.0)

    def test_stationary(self):
        r = resample(Trajectory(1, [(1, 1), (1, 1)]), 4)
        assert np.allclose(r.points, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            resample(Trajectory(1, [(0, 0), (1, 1)]), 1)

    @settings(max_examples=40)
    @given(trajectories(), st.integers(2, 20))
    def test_points_on_original_bbox(self, t, n):
        r = resample(t, n)
        low = t.points.min(axis=0) - 1e-9
        high = t.points.max(axis=0) + 1e-9
        assert np.all(r.points >= low) and np.all(r.points <= high)


class TestAffine:
    def test_translate(self):
        t = translate(Trajectory(1, [(0, 0), (1, 1)]), (2, -1))
        assert t.points.tolist() == [[2, -1], [3, 0]]

    def test_translate_validation(self):
        with pytest.raises(ValueError):
            translate(Trajectory(1, [(0, 0)]), (1, 2, 3))

    def test_scale_about_origin(self):
        t = scale(Trajectory(1, [(1, 1)]), 2.0)
        assert t.points.tolist() == [[2, 2]]

    def test_scale_about_point(self):
        t = scale(Trajectory(1, [(2, 2)]), 2.0, origin=(1, 1))
        assert t.points.tolist() == [[3, 3]]

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scale(Trajectory(1, [(0, 0)]), 0.0)


class TestNormalize:
    def test_bounds(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0), (4, 2)]), Trajectory(2, [(2, -2)])])
        low, high = dataset_bounds(ds)
        assert low.tolist() == [0, -2]
        assert high.tolist() == [4, 2]

    def test_bounds_empty(self):
        with pytest.raises(ValueError):
            dataset_bounds([])

    def test_unit_box(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0), (4, 2)]), Trajectory(2, [(2, -2)])])
        out = normalize_unit_box(ds)
        low, high = dataset_bounds(out)
        assert np.all(low >= -1e-12) and np.all(high <= 1.0 + 1e-12)

    def test_preserves_relative_distances(self):
        from repro.distances import dtw

        ds = TrajectoryDataset(
            [Trajectory(1, [(0, 0), (4, 2)]), Trajectory(2, [(1, 1), (5, 3)]), Trajectory(3, [(9, 9), (9, 9)])]
        )
        out = normalize_unit_box(ds)
        d12 = dtw(ds.by_id(1).points, ds.by_id(2).points)
        d13 = dtw(ds.by_id(1).points, ds.by_id(3).points)
        n12 = dtw(out.by_id(1).points, out.by_id(2).points)
        n13 = dtw(out.by_id(1).points, out.by_id(3).points)
        assert (d12 < d13) == (n12 < n13)

    def test_degenerate_single_point_dataset(self):
        ds = TrajectoryDataset([Trajectory(1, [(5, 5)])])
        out = normalize_unit_box(ds)
        assert np.allclose(out.by_id(1).points, 0.0)
