"""Differential adapter parity: every distance adapter must produce the
same candidates *and* the same :class:`FilterStats` through all three
filter paths —

* ``filter_candidates_reference`` — the recursive scalar ``visit`` walk
  (the oracle);
* ``filter_candidates`` — the public scalar entry point (routed through
  the columnar frontier when the adapter supports ``visit_batch``);
* ``filter_candidates_batch`` — the multi-query frontier sweep.

Randomized tries (several datasets × index shapes) keep the comparison
honest across node splits, short-trajectory leaves and mixed-length data.
"""

import pytest

from repro.core.adapters import (
    EDRAdapter,
    ERPAdapter,
    LCSSAdapter,
    batch_visit_supported,
    get_adapter,
)
from repro.core.config import DITAConfig
from repro.core.trie import FilterStats, TrieIndex
from repro.datagen import citywide_dataset, random_walk_dataset, sample_queries

# (name, adapter factory, [taus]) — EDR/LCSS thresholds are edit counts
ADAPTERS = [
    ("dtw", lambda: get_adapter("dtw"), [0.002, 0.01]),
    ("frechet", lambda: get_adapter("frechet"), [0.002, 0.008]),
    ("hausdorff", lambda: get_adapter("hausdorff"), [0.001, 0.005]),
    ("edr", lambda: EDRAdapter(epsilon=0.0005), [1, 3]),
    ("lcss", lambda: LCSSAdapter(epsilon=0.0005, delta=3), [1, 3]),
    ("erp", lambda: ERPAdapter(ndim=2), [0.005, 0.02]),
]

# (dataset factory, index shape) pairs: vary fanout, pivot count and leaf
# capacity so splits, short leaves and deep tries are all exercised
TRIES = [
    (lambda: citywide_dataset(40, seed=71),
     dict(trie_fanout=3, num_pivots=2, trie_leaf_capacity=3)),
    (lambda: citywide_dataset(50, seed=13),
     dict(trie_fanout=4, num_pivots=3, trie_leaf_capacity=8)),
    (lambda: random_walk_dataset(40, avg_len=12, seed=3),
     dict(trie_fanout=2, num_pivots=4, trie_leaf_capacity=1)),
]


def _ids(trie, cands):
    # candidates are int64 dataset-row arrays; translate to ids to compare
    return sorted(trie.dataset.ids_of(cands))


def _stats_tuple(s: FilterStats):
    return (s.nodes_visited, s.nodes_pruned, s.candidates)


@pytest.fixture(scope="module", params=range(len(TRIES)), ids=["city71", "city13", "walks3"])
def trie_and_queries(request):
    make_data, shape = TRIES[request.param]
    data = make_data()
    config = DITAConfig(use_frontier_filter=True, **shape)
    trie = TrieIndex(list(data), config)
    queries = [q.points for q in sample_queries(data, 3, seed=5, perturb=0.0002)]
    return trie, queries


class TestThreeWayParity:
    @pytest.mark.parametrize("name,make_adapter,taus", ADAPTERS, ids=[a[0] for a in ADAPTERS])
    def test_candidates_and_stats_identical(self, trie_and_queries, name, make_adapter, taus):
        trie, queries = trie_and_queries
        adapter = make_adapter()
        for tau in taus:
            # batched frontier sweep over all queries at once
            batch_stats = [FilterStats() for _ in queries]
            batched = trie.filter_candidates_batch(
                queries, [tau] * len(queries), adapter, batch_stats
            )
            for i, q in enumerate(queries):
                ref_stats, sc_stats = FilterStats(), FilterStats()
                ref = trie.filter_candidates_reference(q, tau, adapter, ref_stats)
                scalar = trie.filter_candidates(q, tau, adapter, sc_stats)
                assert _ids(trie, scalar) == _ids(trie, ref), (name, tau, i)
                assert _ids(trie, batched[i]) == _ids(trie, ref), (name, tau, i)
                assert _stats_tuple(sc_stats) == _stats_tuple(ref_stats), (name, tau, i)
                assert _stats_tuple(batch_stats[i]) == _stats_tuple(ref_stats), (name, tau, i)

    @pytest.mark.parametrize("name,make_adapter,taus", ADAPTERS, ids=[a[0] for a in ADAPTERS])
    def test_mixed_tau_batch_matches_per_query(self, trie_and_queries, name, make_adapter, taus):
        """A batch mixing thresholds must answer each query exactly as a
        solo call at that query's own threshold."""
        trie, queries = trie_and_queries
        adapter = make_adapter()
        mixed = [taus[i % len(taus)] for i in range(len(queries))]
        batched = trie.filter_candidates_batch(queries, mixed, adapter, None)
        for i, q in enumerate(queries):
            assert _ids(trie, batched[i]) == _ids(
                trie, trie.filter_candidates_reference(q, mixed[i], adapter, None)
            ), (name, i)

    @pytest.mark.parametrize("name,make_adapter,taus", ADAPTERS, ids=[a[0] for a in ADAPTERS])
    def test_candidates_are_a_superset_of_answers(self, trie_and_queries, name, make_adapter, taus):
        """The filter contract behind the parity: candidates always cover
        the true answer set for the adapter's distance."""
        trie, queries = trie_and_queries
        adapter = make_adapter()
        dist = adapter.distance()
        tau = taus[-1]
        for q in queries:
            cands = set(_ids(trie, trie.filter_candidates(q, tau, adapter, None)))
            for r in trie.filter_candidates_reference(q, float("inf"), adapter, None):
                r = int(r)
                if dist.compute(trie.dataset.points(r), q) <= tau:
                    assert trie.dataset.id_of(r) in cands, (name, r)
        assert len(trie)  # the trie holds the data the queries run against

    def test_frontier_supported_for_all_builtin_adapters(self):
        for name, make_adapter, _ in ADAPTERS:
            assert batch_visit_supported(make_adapter()), name


class TestDeltaParity:
    """Streaming differential: ``search_batch_rows`` over base ∪ delta
    (pending write buffers folded in at read time) must answer
    byte-identically — rows, distances and ``SearchStats`` — to the same
    engine after a *materialized* merge into new columnar blocks, for
    every adapter."""

    STREAM_CFG = DITAConfig(
        num_global_partitions=2, trie_fanout=3, num_pivots=2, trie_leaf_capacity=3
    )

    def _stream(self, make_adapter):
        import numpy as np

        from repro.core.engine import DITAEngine

        base = list(citywide_dataset(30, seed=71))
        engine = DITAEngine(base, self.STREAM_CFG, make_adapter())
        rng = np.random.default_rng(42)
        for k in range(9):
            src = base[(5 * k) % len(base)].points
            engine.append_trajectory(7_000 + k, src + rng.normal(0, 0.0004, src.shape))
        engine.extend_trajectory(7_000, rng.random((2, 2)) * 0.01)
        engine.extend_trajectory(base[2].traj_id, rng.random((3, 2)) * 0.01)
        assert engine.remove_trajectory(base[4].traj_id)
        assert engine.remove_trajectory(7_001)
        return base, engine

    @pytest.mark.parametrize("name,make_adapter,taus", ADAPTERS, ids=[a[0] for a in ADAPTERS])
    def test_base_union_delta_matches_materialized_merge(
        self, tmp_path, name, make_adapter, taus
    ):
        from repro.core.search import SearchStats
        from repro.datagen import sample_queries as _sq

        def stats_tuple(s):
            return (
                s.relevant_partitions,
                s.filter.nodes_visited,
                s.filter.nodes_pruned,
                s.filter.candidates,
                s.verify.pairs,
                s.verify.exact_computed,
                s.verify.accepted,
            )

        base, streamed = self._stream(make_adapter)
        _, merged = self._stream(make_adapter)
        merged.attach_generations(tmp_path / f"gens-{name}")
        merged.merge()  # deltas now live in freshly written catalog blocks
        queries = _sq(base, 3, seed=5)
        tau_list = [taus[i % len(taus)] for i in range(len(queries))]
        s_delta = [SearchStats() for _ in queries]
        s_merged = [SearchStats() for _ in queries]
        got = streamed.search_batch_rows(queries, tau_list, s_delta)
        want = merged.search_batch_rows(queries, tau_list, s_merged)
        assert got == want, name
        assert [stats_tuple(s) for s in s_delta] == [stats_tuple(s) for s in s_merged], name
