"""Correctness and behavioural tests for every baseline."""

import pytest

from conftest import brute_force_join, brute_force_search
from repro.baselines import (
    DFTEngine,
    MBEIndex,
    NaiveEngine,
    SimbaEngine,
    VPTree,
    envelope,
    envelope_lower_bound,
    segment_trajectory,
)
from repro.datagen import beijing_like, sample_queries
from repro.distances import get_distance
from repro.distances.dtw import dtw
from repro.distances.frechet import frechet
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def city():
    return beijing_like(100, seed=91)


@pytest.fixture(scope="module")
def queries(city):
    return sample_queries(city, 4, seed=17)


class TestNaive:
    def test_search_matches_brute_force(self, city, queries):
        engine = NaiveEngine(city, n_partitions=4)
        d = get_distance("dtw")
        for q in queries:
            assert engine.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_join_matches_brute_force(self, city):
        small = list(city)[:40]
        engine = NaiveEngine(small, n_partitions=2)
        other = NaiveEngine(small, n_partitions=2)
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in engine.join(other, 0.002))
        assert got == brute_force_join(small, small, d, 0.002)

    def test_candidates_is_everything(self, city, queries):
        engine = NaiveEngine(city)
        assert engine.count_candidates(queries[0], 0.001) == len(city)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NaiveEngine([])


class TestSimba:
    def test_search_matches_brute_force(self, city, queries):
        engine = SimbaEngine(city, n_partitions=4)
        d = get_distance("dtw")
        for q in queries:
            assert engine.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_frechet_mode(self, city, queries):
        engine = SimbaEngine(city, n_partitions=4, distance="frechet")
        d = get_distance("frechet")
        q = queries[0]
        assert engine.search_ids(q, 0.001) == brute_force_search(city, d, q, 0.001)

    def test_join_matches_brute_force(self, city):
        small = list(city)[:40]
        engine = SimbaEngine(small, n_partitions=2)
        other = SimbaEngine(small, n_partitions=2)
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in engine.join(other, 0.002))
        assert got == brute_force_join(small, small, d, 0.002)

    def test_candidate_count_at_least_answers(self, city, queries):
        engine = SimbaEngine(city, n_partitions=4)
        d = get_distance("dtw")
        q = queries[1]
        assert engine.count_candidates(q, 0.003) >= len(
            brute_force_search(city, d, q, 0.003)
        )

    def test_index_size(self, city):
        g, l = SimbaEngine(city).index_size_bytes()
        assert g > 0 and l > 0


class TestDFT:
    def test_search_matches_brute_force(self, city, queries):
        engine = DFTEngine(city, n_partitions=4)
        d = get_distance("dtw")
        for q in queries:
            assert engine.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_bitmap_accounting(self, city, queries):
        engine = DFTEngine(city, n_partitions=4)
        engine.search(queries[0], 0.003)
        assert engine.last_bitmap_bytes > 0

    def test_join_bitmap_estimate_scales(self, city):
        engine = DFTEngine(city, n_partitions=4)
        assert engine.estimated_join_bitmap_bytes(1000) == 1000 * engine.estimated_join_bitmap_bytes(1)

    def test_segmenting(self):
        t = Trajectory(1, [(i, i) for i in range(20)])
        segs = segment_trajectory(t, max_segment_points=8)
        assert len(segs) == 3
        assert segs[0].contains_point((0, 0))
        assert segs[-1].contains_point((19, 19))

    def test_local_index_bigger_than_dita_style(self, city):
        """DFT's per-segment entries dominate a per-trajectory index."""
        engine = DFTEngine(city, n_partitions=4)
        _, local = engine.index_size_bytes()
        simba_local = SimbaEngine(city, n_partitions=4).index_size_bytes()[1]
        assert local > simba_local


class TestVPTree:
    def test_search_matches_brute_force(self, city, queries):
        tree = VPTree(city)
        d = get_distance("frechet")
        for q in queries:
            assert tree.search_ids(q, 0.001) == brute_force_search(city, d, q, 0.001)

    def test_triangle_pruning_beats_linear(self, city, queries):
        """With a small threshold the VP-tree computes fewer distances than
        a full scan."""
        tree = VPTree(city)
        assert tree.count_candidates(queries[0], 1e-6) < len(city)

    def test_node_count(self, city):
        tree = VPTree(city)
        assert tree.node_count() == len(city)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VPTree([])


class TestMBE:
    def test_search_matches_brute_force_dtw(self, city, queries):
        idx = MBEIndex(city, "dtw")
        d = get_distance("dtw")
        for q in queries:
            assert idx.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_search_matches_brute_force_frechet(self, city, queries):
        idx = MBEIndex(city, "frechet")
        d = get_distance("frechet")
        q = queries[0]
        assert idx.search_ids(q, 0.001) == brute_force_search(city, d, q, 0.001)

    def test_envelope_bound_sound(self, city):
        trajs = list(city)[:20]
        for t in trajs[:5]:
            boxes = envelope(t, 4)
            for q in trajs[5:10]:
                lb = envelope_lower_bound(boxes, q.points, "sum")
                assert lb <= dtw(t.points, q.points) + 1e-9
                lbm = envelope_lower_bound(boxes, q.points, "max")
                assert lbm <= frechet(t.points, q.points) + 1e-9

    def test_join(self, city):
        small = list(city)[:30]
        idx = MBEIndex(small, "dtw")
        other = MBEIndex(small, "dtw")
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in idx.join(other, 0.002))
        assert got == brute_force_join(small, small, d, 0.002)

    def test_rejects_edit_distances(self, city):
        with pytest.raises(ValueError):
            MBEIndex(city, "edr")

    def test_invalid_aggregate(self, city):
        t = list(city)[0]
        with pytest.raises(ValueError):
            envelope_lower_bound(envelope(t), t.points, "median")
