"""Breadth tests: joins under every distance, and d >= 3 support.

The paper states the method "can be easily extended to support
multi-dimensional data (e.g., d >= 3)"; these tests pin that claim for the
full pipeline (partitioning uses the first two axes, all distances and
bounds are dimension-agnostic).
"""

import numpy as np
import pytest

from conftest import brute_force_join
from repro import DITAConfig, DITAEngine
from repro.core.adapters import EDRAdapter, ERPAdapter, LCSSAdapter
from repro.datagen import citywide_dataset
from repro.distances import get_distance
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def small():
    return list(citywide_dataset(50, seed=71))


@pytest.fixture(scope="module")
def cfg():
    return DITAConfig(num_global_partitions=2, trie_fanout=3, num_pivots=2, trie_leaf_capacity=3)


class TestJoinsAllDistances:
    def test_edr_join(self, small, cfg):
        eps = 0.0005
        engine = DITAEngine(small, cfg, distance=EDRAdapter(epsilon=eps))
        d = get_distance("edr", epsilon=eps)
        got = sorted((a, b) for a, b, _ in engine.join(engine, 2))
        assert got == brute_force_join(small, small, d, 2)

    def test_lcss_join(self, small, cfg):
        eps, delta = 0.0005, 3
        engine = DITAEngine(small, cfg, distance=LCSSAdapter(epsilon=eps, delta=delta))
        d = get_distance("lcss", epsilon=eps, delta=delta)
        got = sorted((a, b) for a, b, _ in engine.join(engine, 2))
        assert got == brute_force_join(small, small, d, 2)

    def test_erp_join(self, small, cfg):
        engine = DITAEngine(small, cfg, distance=ERPAdapter(ndim=2))
        d = get_distance("erp")
        got = sorted((a, b) for a, b, _ in engine.join(engine, 0.01))
        assert got == brute_force_join(small, small, d, 0.01)


def _dataset_3d(n=40, seed=5):
    """Citywide trips lifted to 3-d (e.g. altitude as the third axis)."""
    rng = np.random.default_rng(seed)
    base = citywide_dataset(n, seed=seed)
    out = []
    for t in base:
        z = np.cumsum(rng.normal(0, 0.0005, size=(len(t), 1)), axis=0)
        out.append(Trajectory(t.traj_id, np.hstack([t.points, z])))
    return out


class Test3DSupport:
    def test_search_3d(self, cfg):
        data = _dataset_3d()
        engine = DITAEngine(data, cfg)
        d = get_distance("dtw")
        q = data[7]
        got = engine.search_ids(q, 0.003)
        want = sorted(t.traj_id for t in data if d.compute(t.points, q.points) <= 0.003)
        assert got == want

    def test_join_3d(self, cfg):
        data = _dataset_3d(30)
        engine = DITAEngine(data, cfg)
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in engine.join(engine, 0.002))
        assert got == brute_force_join(data, data, d, 0.002)

    def test_frechet_3d(self, cfg):
        data = _dataset_3d(30)
        engine = DITAEngine(data, cfg, distance="frechet")
        d = get_distance("frechet")
        q = data[3]
        assert engine.search_ids(q, 0.001) == sorted(
            t.traj_id for t in data if d.compute(t.points, q.points) <= 0.001
        )

    def test_knn_3d(self, cfg):
        from repro.core.knn import knn_search

        data = _dataset_3d(30)
        engine = DITAEngine(data, cfg)
        d = get_distance("dtw")
        q = data[11]
        got = [t.traj_id for t, _ in knn_search(engine, q, 3)]
        want = [
            t.traj_id
            for t, _ in sorted(
                ((t, d.compute(t.points, q.points)) for t in data),
                key=lambda m: (m[1], m[0].traj_id),
            )[:3]
        ]
        assert got == want
