"""Tests for incremental index updates (insert/remove)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine
from repro.core.trie import TrieIndex
from repro.datagen import beijing_like, citywide_dataset
from repro.distances import get_distance
from repro.trajectory import Trajectory


@pytest.fixture()
def cfg():
    return DITAConfig(num_global_partitions=2, trie_fanout=3, num_pivots=3, trie_leaf_capacity=3)


def _brute(data, q, tau):
    d = get_distance("dtw")
    return sorted(t.traj_id for t in data if d.compute(t.points, q.points) <= tau)


def _indexed_ids(trie):
    rows = np.asarray(trie.all_rows(), dtype=np.int64)
    return {int(i) for i in trie.dataset.ids_of(rows)}


class TestTrieInsert:
    def test_insert_found_by_filter(self, cfg):
        base = list(beijing_like(30, seed=1))
        trie = TrieIndex(base, cfg)
        newcomer = Trajectory(999, base[0].points + 0.00001)
        trie.insert(newcomer)
        from repro.core.adapters import DTWAdapter

        candidates = trie.filter_candidates(base[0].points, 0.01, DTWAdapter())
        assert 999 in {int(i) for i in trie.dataset.ids_of(candidates)}
        assert len(trie) == 31

    def test_duplicate_insert_rejected(self, cfg):
        base = list(beijing_like(10, seed=1))
        trie = TrieIndex(base, cfg)
        with pytest.raises(ValueError):
            trie.insert(base[0])

    def test_leaf_split_on_overflow(self, cfg):
        base = list(beijing_like(8, seed=2))
        trie = TrieIndex(base, cfg)
        nodes_before = trie.node_count()
        # flood one area so some leaf must split
        for i in range(30):
            trie.insert(Trajectory(500 + i, base[0].points + i * 1e-6))
        assert trie.node_count() > nodes_before
        assert sorted(_indexed_ids(trie)) == sorted(
            [t.traj_id for t in base] + [500 + i for i in range(30)]
        )

    def test_single_point_insert(self, cfg):
        base = list(beijing_like(10, seed=3))
        trie = TrieIndex(base, cfg)
        trie.insert(Trajectory(700, [(0.1, 0.1)]))
        assert 700 in _indexed_ids(trie)


class TestTrieRemove:
    def test_remove_existing(self, cfg):
        base = list(beijing_like(20, seed=4))
        trie = TrieIndex(base, cfg)
        assert trie.remove(base[5].traj_id)
        assert base[5].traj_id not in _indexed_ids(trie)
        assert len(trie) == 19

    def test_remove_absent(self, cfg):
        trie = TrieIndex(list(beijing_like(10, seed=4)), cfg)
        assert not trie.remove(12345)


class TestEngineUpdates:
    def test_search_exact_after_updates(self, cfg):
        base = list(beijing_like(50, seed=5))
        engine = DITAEngine(base, cfg)
        extra = [
            Trajectory(2000 + t.traj_id, t.points + 0.00003)
            for t in citywide_dataset(15, seed=6)
        ]
        for t in extra:
            engine.insert(t)
        removed = {base[1].traj_id, base[9].traj_id}
        for tid in removed:
            assert engine.remove(tid)
        current = [t for t in base if t.traj_id not in removed] + extra
        assert len(engine) == len(current)
        for q in (current[0], extra[0]):
            assert engine.search_ids(q, 0.003) == _brute(current, q, 0.003)

    def test_insert_duplicate_id_rejected(self, cfg):
        base = list(beijing_like(10, seed=7))
        engine = DITAEngine(base, cfg)
        with pytest.raises(ValueError):
            engine.insert(Trajectory(base[0].traj_id, [(0, 0), (1, 1)]))

    def test_remove_absent_false(self, cfg):
        engine = DITAEngine(list(beijing_like(10, seed=7)), cfg)
        assert not engine.remove(98765)

    def test_insert_outside_all_partitions(self, cfg):
        """A trajectory outside every partition MBR still gets indexed and
        found (the chosen partition's MBRs grow)."""
        base = list(beijing_like(30, seed=8))
        engine = DITAEngine(base, cfg)
        faraway = Trajectory(3000, np.array([(5.0, 5.0), (5.1, 5.1), (5.2, 5.0)]))
        engine.insert(faraway)
        assert engine.search_ids(faraway, 0.001) == [3000]

    def test_join_exact_after_updates(self, cfg):
        base = list(beijing_like(30, seed=9))
        engine = DITAEngine(base, cfg)
        twin = Trajectory(4000, base[0].points + 0.00001)
        engine.insert(twin)
        pairs = engine.join(engine, 0.002)
        d = get_distance("dtw")
        current = base + [twin]
        want = sorted(
            (a.traj_id, b.traj_id)
            for a in current
            for b in current
            if d.compute(a.points, b.points) <= 0.002
        )
        assert sorted((a, b) for a, b, _ in pairs) == want

class TestExtendAfterRemove:
    """The remove → extend / remove → re-append sequences on the *same id*
    within one mutation generation (no flush in between) — pins the
    suspected stale-batch_block hazard: a removed row must not resurface
    through a cached trie block when its id comes back."""

    def test_extend_after_remove_same_id_raises(self, cfg):
        base = list(beijing_like(20, seed=11))
        engine = DITAEngine(base, cfg)
        tid = base[3].traj_id
        assert engine.remove_trajectory(tid)
        with pytest.raises(KeyError):
            engine.extend_trajectory(tid, [(0.01, 0.01)])

    def test_extend_after_remove_pending_id_raises(self, cfg):
        engine = DITAEngine(list(beijing_like(20, seed=11)), cfg)
        engine.append_trajectory(6_000, [(0.05, 0.05), (0.06, 0.06)])
        assert engine.remove_trajectory(6_000)
        with pytest.raises(KeyError):
            engine.extend_trajectory(6_000, [(0.07, 0.07)])

    def test_remove_then_reappend_same_id_same_generation(self, cfg):
        base = list(beijing_like(20, seed=11))
        engine = DITAEngine(base, cfg)
        tid = base[3].traj_id
        replacement = np.asarray([(0.12, 0.12), (0.13, 0.13), (0.14, 0.12)])
        assert engine.remove_trajectory(tid)
        engine.append_trajectory(tid, replacement)  # same id, no flush between
        assert len(engine) == len(base)
        # the query (forcing the flush) must see only the replacement
        probe = Trajectory(-1, replacement)
        assert engine.search_ids(probe, 1e-9) == [tid]
        assert np.array_equal(engine.trajectory(tid).points, replacement)
        current = [t for t in base if t.traj_id != tid] + [Trajectory(tid, replacement)]
        q = base[0]
        assert engine.search_ids(q, 0.003) == _brute(current, q, 0.003)

    def test_remove_then_reinsert_same_id_immediate_path(self, cfg):
        """The same hazard through the immediate insert/remove path: the
        partition's cached batch block must rebuild, not serve the dead row."""
        base = list(beijing_like(20, seed=11))
        engine = DITAEngine(base, cfg)
        tid = base[3].traj_id
        replacement = np.asarray([(0.12, 0.12), (0.13, 0.13), (0.14, 0.12)])
        assert engine.remove(tid)
        engine.insert(Trajectory(tid, replacement))
        probe = Trajectory(-1, replacement)
        assert engine.search_ids(probe, 1e-9) == [tid]
        old_probe = Trajectory(-2, base[3].points)
        assert tid not in engine.search_ids(old_probe, 1e-9)

    def test_extend_then_remove_drops_the_extension(self, cfg):
        base = list(beijing_like(20, seed=11))
        engine = DITAEngine(base, cfg)
        tid = base[3].traj_id
        engine.extend_trajectory(tid, [(0.19, 0.19)])
        assert engine.remove_trajectory(tid)
        assert len(engine) == len(base) - 1
        with pytest.raises(KeyError):
            engine.trajectory(tid)
        q = base[0]
        current = [t for t in base if t.traj_id != tid]
        assert engine.search_ids(q, 0.003) == _brute(current, q, 0.003)


class TestRandomUpdateSequences:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(0, 10_000))
    def test_random_update_sequences(self, cfg, seed):
        rng = np.random.default_rng(seed)
        base = list(citywide_dataset(15, seed=seed % 100))
        engine = DITAEngine(base, cfg)
        current = {t.traj_id: t for t in base}
        next_id = 10_000
        for _ in range(8):
            if rng.random() < 0.6 or len(current) < 3:
                pts = rng.uniform(0, 0.2, size=(int(rng.integers(1, 8)), 2))
                t = Trajectory(next_id, pts)
                next_id += 1
                engine.insert(t)
                current[t.traj_id] = t
            else:
                victim = int(rng.choice(sorted(current)))
                assert engine.remove(victim)
                del current[victim]
        q = list(current.values())[0]
        assert engine.search_ids(q, 0.01) == _brute(current.values(), q, 0.01)


class TestGenerationCounter:
    """The mutation-generation contract external caches key on.

    Regression for the PR 9 stale-state hazard: a *buffered* delta write
    must advance the generation immediately — before any flush-on-read —
    or a cache keyed on it would serve pre-write results against
    post-write data.
    """

    def _engine(self, n=20, seed=21, **kw):
        cfg = DITAConfig(
            num_global_partitions=2,
            trie_fanout=3,
            num_pivots=3,
            trie_leaf_capacity=3,
            delta_max_rows=10_000,
            **kw,
        )
        base = list(beijing_like(n, seed=seed))
        return DITAEngine(base, cfg), base

    def test_buffered_writes_bump_before_flush(self):
        engine, base = self._engine()
        g0 = engine.generation
        engine.append_trajectory(9001, [(0.1, 0.1), (0.11, 0.11)])
        g1 = engine.generation
        assert g1 > g0 and engine.n_pending > 0  # bumped while still buffered
        engine.extend_trajectory(9001, [(0.12, 0.12)])
        g2 = engine.generation
        assert g2 > g1 and engine.n_pending > 0
        assert engine.remove_trajectory(base[0].traj_id)
        assert engine.generation > g2

    def test_partition_versions_are_partition_exact(self):
        engine, base = self._engine()
        before = {p: engine.partition_version(p) for p in engine.partition_pids()}
        pid = engine.append_trajectory(9002, [(0.05, 0.05)])
        after = {p: engine.partition_version(p) for p in engine.partition_pids()}
        assert after[pid] == before[pid] + 1
        for p in engine.partition_pids():
            if p != pid:
                assert after[p] == before[p]

    def test_legacy_insert_remove_bump(self):
        engine, base = self._engine()
        g0 = engine.generation
        engine.insert(Trajectory(9003, [(0.02, 0.02), (0.03, 0.03)]))
        assert engine.generation > g0
        g1 = engine.generation
        assert engine.remove(9003)
        assert engine.generation > g1

    def test_repartition_bumps(self):
        engine, _ = self._engine(n=30)
        # skew one partition with buffered appends, then force repartition
        for i in range(40):
            engine.append_trajectory(20_000 + i, [(0.001 * i, 0.001), (0.002, 0.002)])
        engine.flush_deltas()
        g0 = engine.generation
        if engine.repartition():
            assert engine.generation > g0

    def test_merge_bumps(self, tmp_path):
        engine, _ = self._engine()
        engine.attach_generations(tmp_path / "gens")
        engine.append_trajectory(9004, [(0.01, 0.01)])
        engine.flush_deltas()
        g0 = engine.generation
        engine.merge()
        assert engine.generation > g0

    def test_sync_for_read_folds_and_stamps(self):
        engine, base = self._engine()
        engine.append_trajectory(9005, [(0.07, 0.07)])
        g = engine.sync_for_read()
        assert engine.n_pending == 0
        assert g == engine.generation  # no hidden bump after the fold


class TestFlushReentrancy:
    """`_sync_streams` must be idempotent under interleaved reads."""

    def _engine(self):
        cfg = DITAConfig(
            num_global_partitions=2,
            trie_fanout=3,
            num_pivots=3,
            trie_leaf_capacity=3,
            delta_max_rows=10_000,
        )
        base = list(beijing_like(18, seed=31))
        return DITAEngine(base, cfg), base

    def test_reentrant_sync_is_noop(self, monkeypatch):
        """A read issued from inside the flush machinery (the serving
        layer's interleavings) must not double-flush or observe a
        half-compacted partition set."""
        from repro.core import engine as engine_mod

        engine, base = self._engine()
        engine.append_trajectory(9100, base[0].points + 0.0001)
        engine.append_trajectory(9101, base[1].points + 0.0001)

        real_trie = engine_mod.TrieIndex
        reentered = []

        class ReentrantTrie(real_trie):
            def __init__(self, part, config, *a, **kw):
                # simulate an interleaved read mid-flush: must be a no-op
                pending_before = engine.n_pending
                engine._sync_streams()
                reentered.append(engine.n_pending == pending_before)
                super().__init__(part, config, *a, **kw)

        monkeypatch.setattr(engine_mod, "TrieIndex", ReentrantTrie)
        applied = engine.flush_deltas()
        monkeypatch.undo()
        assert applied > 0
        assert reentered and all(reentered)
        assert engine.n_pending == 0
        q = base[0]
        expect = list(base) + [
            Trajectory(9100, base[0].points + 0.0001),
            Trajectory(9101, base[1].points + 0.0001),
        ]
        assert engine.search_ids(q, 0.003) == _brute(expect, q, 0.003)

    def test_failed_flush_restores_deltas(self, monkeypatch):
        from repro.core import engine as engine_mod

        engine, base = self._engine()
        engine.append_trajectory(9102, base[0].points + 0.0001)
        pending = engine.n_pending

        real_trie = engine_mod.TrieIndex

        class ExplodingTrie(real_trie):
            def __init__(self, *a, **kw):
                raise RuntimeError("simulated mid-flush failure")

        monkeypatch.setattr(engine_mod, "TrieIndex", ExplodingTrie)
        with pytest.raises(RuntimeError):
            engine.flush_deltas()
        monkeypatch.undo()
        # nothing adopted, nothing lost: pending writes are all still there
        assert engine.n_pending == pending
        assert not engine._in_flush
        q = base[0]
        expect = list(base) + [Trajectory(9102, base[0].points + 0.0001)]
        assert engine.search_ids(q, 0.003) == _brute(expect, q, 0.003)

    def test_double_flush_second_is_noop(self):
        engine, base = self._engine()
        engine.append_trajectory(9103, [(0.01, 0.01)])
        assert engine.flush_deltas() > 0
        assert engine.flush_deltas() == 0
