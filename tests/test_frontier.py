"""Differential tests: frontier traversal vs. the recursive reference walk.

The columnar frontier filter must reproduce ``_filter_reference`` exactly —
same candidate sets, same ``FilterStats`` counts — for every adapter, on
tries of every shape (random fanouts, short leaves, post-insert/remove),
and batched filtering must equal the per-query loop.
"""

import numpy as np
import pytest

from repro.core.adapters import (
    DTWAdapter,
    EDRAdapter,
    ERPAdapter,
    FrechetAdapter,
    HausdorffAdapter,
    LCSSAdapter,
    batch_visit_supported,
)
from repro.core.config import DITAConfig
from repro.core.engine import DITAEngine
from repro.core.knn import knn_search
from repro.core.trie import FilterStats, TrieIndex, TrieNode
from repro.datagen import beijing_like, random_walk_dataset
from repro.geometry.mbr import MBR
from repro.kernels.frontier import ColumnarTrie, QueryBatch
from repro.trajectory import Trajectory

#: (adapter, tau) pairs covering every accumulation policy, suffix pruning
#: on and off where the flag matters
ADAPTER_CASES = [
    (DTWAdapter(), 0.05),
    (DTWAdapter(use_suffix_pruning=False), 0.05),
    (FrechetAdapter(), 0.02),
    (FrechetAdapter(use_suffix_pruning=False), 0.02),
    (HausdorffAdapter(), 0.02),
    (EDRAdapter(epsilon=0.002), 6.0),
    (LCSSAdapter(epsilon=0.002, delta=2), 6.0),
    (ERPAdapter(), 0.05),
]

CASE_IDS = [
    "dtw", "dtw-nosuffix", "frechet", "frechet-nosuffix",
    "hausdorff", "edr", "lcss", "erp",
]


def assert_parity(trie, queries, adapter, tau):
    """Frontier batch == reference loop: ids, order-insensitive, and stats."""
    n = len(queries)
    s_ref = [FilterStats() for _ in range(n)]
    s_fro = [FilterStats() for _ in range(n)]
    ref = [
        trie.filter_candidates_reference(q, tau, adapter, s)
        for q, s in zip(queries, s_ref)
    ]
    got = trie.filter_candidates_batch(queries, [tau] * n, adapter, s_fro)
    ids = trie.dataset.ids_of
    for i in range(n):
        assert sorted(ids(ref[i])) == sorted(ids(got[i]))
        assert s_ref[i].nodes_visited == s_fro[i].nodes_visited, (i, s_ref[i], s_fro[i])
        assert s_ref[i].nodes_pruned == s_fro[i].nodes_pruned, (i, s_ref[i], s_fro[i])
        assert s_ref[i].candidates == s_fro[i].candidates


class TestDifferential:
    @pytest.mark.parametrize("adapter,tau", ADAPTER_CASES, ids=CASE_IDS)
    def test_beijing_like(self, adapter, tau):
        data = list(beijing_like(200, seed=11))
        trie = TrieIndex(data, DITAConfig(trie_fanout=4, num_pivots=3, trie_leaf_capacity=4))
        queries = [t.points for t in data[:6]]
        assert_parity(trie, queries, adapter, tau)

    @pytest.mark.parametrize("adapter,tau", ADAPTER_CASES, ids=CASE_IDS)
    def test_random_fanouts(self, adapter, tau):
        data = list(random_walk_dataset(80, avg_len=10, seed=17))
        for fanout, pivots, cap in [(2, 4, 1), (3, 0, 4), (8, 2, 2)]:
            trie = TrieIndex(
                data,
                DITAConfig(
                    trie_fanout=fanout, num_pivots=pivots,
                    trie_leaf_capacity=cap, cell_size=0.05,
                ),
            )
            queries = [t.points for t in data[:4]]
            assert_parity(trie, queries, adapter, 10 * tau)

    @pytest.mark.parametrize("adapter,tau", ADAPTER_CASES, ids=CASE_IDS)
    def test_short_leaf_tries(self, adapter, tau):
        """2-point trajectories end at level 2 (short leaves) and must be
        emitted by both walks identically."""
        trajs = [Trajectory(i, [(0.01 * i, 0.02 * i), (0.01 * i + 0.01, 0.02 * i)]) for i in range(12)]
        trajs += [
            Trajectory(100 + i, [(0.01 * j, 0.005 * i * j) for j in range(6)])
            for i in range(8)
        ]
        trie = TrieIndex(
            trajs, DITAConfig(trie_fanout=2, num_pivots=3, trie_leaf_capacity=1, cell_size=0.5)
        )
        queries = [trajs[0].points, trajs[13].points]
        assert_parity(trie, queries, adapter, tau)

    @pytest.mark.parametrize("adapter,tau", ADAPTER_CASES, ids=CASE_IDS)
    def test_post_insert_remove(self, adapter, tau):
        data = list(random_walk_dataset(60, avg_len=9, seed=23))
        trie = TrieIndex(
            data[:40], DITAConfig(trie_fanout=3, num_pivots=2, trie_leaf_capacity=2, cell_size=0.05)
        )
        for t in data[40:]:
            trie.insert(t)
        for t in data[5:15]:
            trie.remove(t.traj_id)
        queries = [t.points for t in data[:4]] + [data[45].points]
        assert_parity(trie, queries, adapter, tau)

    def test_varied_taus_in_one_batch(self):
        data = list(beijing_like(150, seed=5))
        trie = TrieIndex(data, DITAConfig(trie_fanout=4, num_pivots=3))
        adapter = DTWAdapter()
        queries = [t.points for t in data[:5]]
        taus = [0.0, 1e-4, 0.01, 0.1, 2.0]
        got = trie.filter_candidates_batch(queries, taus, adapter)
        for q, tau, cands in zip(queries, taus, got):
            ref = trie.filter_candidates_reference(q, tau, adapter)
            assert sorted(trie.dataset.ids_of(ref)) == sorted(trie.dataset.ids_of(cands))


class TestBatchVsLoop:
    def test_batch_equals_single_query_calls(self):
        """filter_candidates_batch over Q queries == Q filter_candidates
        calls, element for element (same ids in the same order)."""
        data = list(beijing_like(200, seed=3))
        trie = TrieIndex(data, DITAConfig(trie_fanout=4, num_pivots=3))
        adapter = DTWAdapter()
        queries = [t.points for t in data[:10]]
        taus = [0.01] * 10
        batched = trie.filter_candidates_batch(queries, taus, adapter)
        looped = [trie.filter_candidates(q, t, adapter) for q, t in zip(queries, taus)]
        assert [trie.dataset.ids_of(c) for c in batched] == [
            trie.dataset.ids_of(c) for c in looped
        ]

    def test_searcher_batch_equals_loop(self):
        from repro.core.search import LocalSearcher, SearchStats

        data = list(beijing_like(120, seed=9))
        trie = TrieIndex(data, DITAConfig(trie_fanout=4, num_pivots=3))
        adapter = DTWAdapter()
        searcher = LocalSearcher(trie, adapter)
        queries = data[:6]
        taus = [0.004] * 6
        stats_b = [SearchStats() for _ in queries]
        stats_l = [SearchStats() for _ in queries]
        batched = searcher.search_batch(queries, taus, stats=stats_b)
        looped = [
            searcher.search(q, t, stats=s) for q, t, s in zip(queries, taus, stats_l)
        ]
        for got, ref, sb, sl in zip(batched, looped, stats_b, stats_l):
            assert [(t.traj_id, d) for t, d in got] == [(t.traj_id, d) for t, d in ref]
            assert sb.filter.candidates == sl.filter.candidates
            assert sb.verify.accepted == sl.verify.accepted
            assert sb.verify.exact_computed == sl.verify.exact_computed


class TestEndToEnd:
    def _engines(self, n=120, seed=4, **cfg_kw):
        data = beijing_like(n, seed=seed)
        base = dict(num_global_partitions=3, trie_fanout=4, num_pivots=3)
        base.update(cfg_kw)
        on = DITAEngine(data, DITAConfig(use_frontier_filter=True, **base))
        off = DITAEngine(data, DITAConfig(use_frontier_filter=False, **base))
        return data, on, off

    def test_search_identical_under_both_paths(self):
        data, on, off = self._engines()
        for qid in sorted(data.ids)[:5]:
            q = data.by_id(qid)
            assert on.search_ids(q, 0.003) == off.search_ids(q, 0.003)

    def test_search_batch_matches_search(self):
        data, on, _ = self._engines()
        queries = [data.by_id(i) for i in sorted(data.ids)[:5]]
        taus = [0.003] * len(queries)
        batched = on.search_batch(queries, taus)
        for q, tau, matches in zip(queries, taus, batched):
            assert sorted((t.traj_id, d) for t, d in matches) == sorted(
                (t.traj_id, d) for t, d in on.search(q, tau)
            )

    def test_join_identical_under_both_paths(self):
        data, on, off = self._engines(n=80)
        assert sorted(on.self_join(0.002)) == sorted(off.self_join(0.002))

    def test_knn_identical_under_both_paths(self):
        data, on, off = self._engines(n=80)
        q = data.by_id(sorted(data.ids)[0])
        assert [(t.traj_id, d) for t, d in knn_search(on, q, 5)] == [
            (t.traj_id, d) for t, d in knn_search(off, q, 5)
        ]


class TestOverflowNodeRegression:
    """A node holding both leaf members and children (creatable through
    insert's overflow path or deserialization) must emit its members *and*
    keep walking — the old walk returned early and dropped candidates."""

    def _trie(self):
        t_a = Trajectory(1, [(0.0, 0.0), (0.1, 0.1), (0.2, 0.0), (0.3, 0.3)])
        t_b = Trajectory(2, [(0.5, 0.5), (0.6, 0.5), (0.7, 0.6), (0.8, 0.7)])
        child = TrieNode(
            level=1,
            kind="first",
            mbr=MBR.of_point(np.asarray(t_b.points[0])),
            rows=[1],
            max_len=4,
        )
        root = TrieNode(level=0, children=[child], rows=[0], max_len=4)
        return TrieIndex([t_a, t_b], DITAConfig(num_pivots=2), _root=root)

    def test_reference_walk_emits_members_and_descends(self):
        trie = self._trie()
        ids = sorted(
            trie.dataset.ids_of(
                trie.filter_candidates_reference(
                    np.asarray([(0.5, 0.5), (0.8, 0.7)]), 10.0, DTWAdapter()
                )
            )
        )
        assert ids == [1, 2]

    def test_frontier_matches_on_overflow_node(self):
        trie = self._trie()
        assert_parity(
            trie, [np.asarray([(0.5, 0.5), (0.8, 0.7)])], DTWAdapter(), 10.0
        )


class TestFallbacksAndLayout:
    def test_custom_visit_without_batch_falls_back(self):
        class TweakedDTW(DTWAdapter):
            def visit(self, state, kind, mbr, q, node_max_len=None):
                return super().visit(state, kind, mbr, q, node_max_len)

        assert batch_visit_supported(DTWAdapter())
        assert batch_visit_supported(EDRAdapter())
        assert not batch_visit_supported(TweakedDTW())
        data = list(beijing_like(60, seed=2))
        trie = TrieIndex(data, DITAConfig(trie_fanout=4, num_pivots=2))
        q = data[0].points
        got = trie.filter_candidates_batch([q], [0.01], TweakedDTW())[0]
        ref = trie.filter_candidates_reference(q, 0.01, TweakedDTW())
        assert trie.dataset.ids_of(got) == trie.dataset.ids_of(ref)

    def test_config_off_uses_reference(self):
        data = list(beijing_like(60, seed=2))
        trie = TrieIndex(data, DITAConfig(use_frontier_filter=False))
        q = data[0].points
        assert sorted(
            trie.dataset.ids_of(trie.filter_candidates(q, 0.01, DTWAdapter()))
        ) == sorted(
            trie.dataset.ids_of(trie.filter_candidates_reference(q, 0.01, DTWAdapter()))
        )

    def test_columnar_layout_counts(self):
        data = list(beijing_like(90, seed=6))
        trie = TrieIndex(data, DITAConfig(trie_fanout=3, num_pivots=2, trie_leaf_capacity=2))
        ct = trie.columnar()
        assert ct.n_nodes == trie.node_count()
        assert int(ct.member_rows.shape[0]) == len(trie.all_rows())
        assert ct.size_bytes() > 0
        # child CSR ranges tile [1, n_nodes) exactly once
        spans = sorted(
            (int(lo), int(hi)) for lo, hi in zip(ct.child_lo, ct.child_hi) if hi > lo
        )
        flat = [i for lo, hi in spans for i in range(lo, hi)]
        assert flat == list(range(1, ct.n_nodes))

    def test_columnar_cache_invalidated_by_mutation(self):
        data = list(random_walk_dataset(20, avg_len=8, seed=1))
        trie = TrieIndex(data[:19], DITAConfig(trie_fanout=3, num_pivots=2, cell_size=0.05))
        c1 = trie.columnar()
        assert trie.columnar() is c1  # cached while unchanged
        trie.insert(data[19])
        c2 = trie.columnar()
        assert c2 is not c1
        assert int(c2.member_rows.shape[0]) == int(c1.member_rows.shape[0]) + 1

    def test_query_batch_validation(self):
        with pytest.raises(ValueError):
            QueryBatch([np.empty((0, 2))])
        with pytest.raises(ValueError):
            TrieIndex([], DITAConfig()).filter_candidates_batch(
                [np.zeros((2, 2))], [0.1, 0.2], DTWAdapter()
            )

    def test_empty_trie(self):
        trie = TrieIndex([], DITAConfig())
        got = trie.filter_candidates_batch([np.zeros((3, 2))], [1.0], DTWAdapter())
        assert len(got) == 1 and int(got[0].shape[0]) == 0
