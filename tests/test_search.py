"""End-to-end search correctness: DITA == brute force for every distance."""

import numpy as np
import pytest

from conftest import brute_force_search
from repro import DITAConfig, DITAEngine
from repro.core.adapters import EDRAdapter, LCSSAdapter, ERPAdapter
from repro.core.search import SearchStats
from repro.datagen import beijing_like, sample_queries
from repro.distances import get_distance


@pytest.fixture(scope="module")
def city():
    return beijing_like(120, seed=42)


@pytest.fixture(scope="module")
def cfg():
    return DITAConfig(num_global_partitions=3, trie_fanout=4, num_pivots=3, trie_leaf_capacity=4)


@pytest.fixture(scope="module")
def dtw_engine(city, cfg):
    return DITAEngine(city, cfg)


class TestDTWSearch:
    @pytest.mark.parametrize("tau", [0.0005, 0.001, 0.003, 0.005])
    def test_matches_brute_force(self, dtw_engine, city, cfg, tau):
        d = get_distance("dtw")
        for q in sample_queries(city, 4, seed=int(tau * 1e5)):
            got = dtw_engine.search_ids(q, tau)
            want = brute_force_search(city, d, q, tau)
            assert got == want

    def test_distances_returned_correct(self, dtw_engine, city):
        d = get_distance("dtw")
        q = sample_queries(city, 1, seed=7)[0]
        for t, dist in dtw_engine.search(q, 0.005):
            assert dist == pytest.approx(d.compute(t.points, q.points), abs=1e-9)
            assert dist <= 0.005

    def test_perturbed_queries(self, dtw_engine, city):
        d = get_distance("dtw")
        for q in sample_queries(city, 3, seed=11, perturb=0.0004):
            assert dtw_engine.search_ids(q, 0.004) == brute_force_search(city, d, q, 0.004)

    def test_tau_zero_finds_self(self, dtw_engine, city):
        q = sample_queries(city, 1, seed=1)[0]
        # the query is an exact copy of a dataset trajectory
        assert len(dtw_engine.search_ids(q, 0.0)) >= 1

    def test_negative_tau_rejected(self, dtw_engine, city):
        q = sample_queries(city, 1, seed=1)[0]
        with pytest.raises(ValueError):
            dtw_engine.search(q, -0.1)

    def test_stats_collected(self, dtw_engine, city):
        q = sample_queries(city, 1, seed=3)[0]
        stats = SearchStats()
        dtw_engine.search(q, 0.003, stats=stats)
        assert stats.relevant_partitions >= 1
        assert stats.verify.pairs == stats.candidates

    def test_count_candidates_superset_of_answers(self, dtw_engine, city):
        d = get_distance("dtw")
        q = sample_queries(city, 1, seed=5)[0]
        tau = 0.003
        assert dtw_engine.count_candidates(q, tau) >= len(brute_force_search(city, d, q, tau))


class TestFrechetSearch:
    @pytest.mark.parametrize("tau", [0.0005, 0.002])
    def test_matches_brute_force(self, city, cfg, tau):
        engine = DITAEngine(city, cfg, distance="frechet")
        d = get_distance("frechet")
        for q in sample_queries(city, 4, seed=13):
            assert engine.search_ids(q, tau) == brute_force_search(city, d, q, tau)


class TestEDRSearch:
    @pytest.mark.parametrize("tau", [1, 3])
    def test_matches_brute_force(self, city, cfg, tau):
        eps = 0.0005
        engine = DITAEngine(city, cfg, distance=EDRAdapter(epsilon=eps))
        d = get_distance("edr", epsilon=eps)
        for q in sample_queries(city, 3, seed=17):
            assert engine.search_ids(q, tau) == brute_force_search(city, d, q, tau)


class TestLCSSSearch:
    def test_matches_brute_force(self, city, cfg):
        eps, delta, tau = 0.0005, 3, 2
        engine = DITAEngine(city, cfg, distance=LCSSAdapter(epsilon=eps, delta=delta))
        d = get_distance("lcss", epsilon=eps, delta=delta)
        for q in sample_queries(city, 3, seed=19):
            assert engine.search_ids(q, tau) == brute_force_search(city, d, q, tau)


class TestERPSearch:
    def test_matches_brute_force(self, city, cfg):
        engine = DITAEngine(city, cfg, distance=ERPAdapter(ndim=2))
        d = get_distance("erp")
        for q in sample_queries(city, 2, seed=23):
            assert engine.search_ids(q, 0.01) == brute_force_search(city, d, q, 0.01)


class TestEngineConfigVariants:
    def test_search_correct_without_optimizations(self, city):
        """Every filter disabled must not change answers (only speed)."""
        cfg = DITAConfig(
            num_global_partitions=2,
            trie_fanout=4,
            num_pivots=2,
            use_suffix_pruning=False,
            use_mbr_coverage=False,
            use_cell_filter=False,
        )
        engine = DITAEngine(city, cfg)
        d = get_distance("dtw")
        q = sample_queries(city, 1, seed=29)[0]
        assert engine.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_single_partition(self, city):
        cfg = DITAConfig(num_global_partitions=1, trie_fanout=4, num_pivots=2)
        engine = DITAEngine(city, cfg)
        d = get_distance("dtw")
        q = sample_queries(city, 1, seed=31)[0]
        assert engine.search_ids(q, 0.003) == brute_force_search(city, d, q, 0.003)

    def test_empty_dataset_rejected(self, cfg):
        with pytest.raises(ValueError):
            DITAEngine([], cfg)

    def test_index_size_reported(self, dtw_engine):
        g, l = dtw_engine.index_size_bytes()
        assert g > 0 and l > 0

    def test_build_time_recorded(self, dtw_engine):
        assert dtw_engine.build_time_s > 0
