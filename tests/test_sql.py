"""Tests for the SQL front end: lexer, parser, optimizer, execution."""

import numpy as np
import pytest

from conftest import brute_force_join, brute_force_search
from repro.core.config import DITAConfig
from repro.datagen import beijing_like, sample_queries
from repro.distances import get_distance
from repro.sql import DITASession, SQLError, parse, tokenize
from repro.sql.ast import (
    BinaryOp,
    Comparison,
    CreateIndex,
    FunctionCall,
    Literal,
    Select,
    TrajectoryLiteral,
)
from repro.sql.optimizer import fold_constants, split_conjuncts
from repro.sql.tokens import TokenType
from repro.trajectory import Trajectory


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("SELECT * FROM t WHERE x <= 0.5")
        types = [t.type for t in toks]
        assert types[:4] == [TokenType.SELECT, TokenType.STAR, TokenType.FROM, TokenType.IDENT]
        assert TokenType.LE in types
        assert types[-1] == TokenType.EOF

    def test_tra_join_keyword(self):
        toks = tokenize("a TRA-JOIN b")
        assert [t.type for t in toks[:3]] == [TokenType.IDENT, TokenType.TRA_JOIN, TokenType.IDENT]

    def test_tra_join_case_insensitive(self):
        assert tokenize("tra-join")[0].type == TokenType.TRA_JOIN

    def test_scientific_number(self):
        tok = tokenize("1.5e-3")[0]
        assert tok.type == TokenType.NUMBER
        assert float(tok.value) == 1.5e-3

    def test_param(self):
        tok = tokenize(":query")[0]
        assert tok.type == TokenType.PARAM
        assert tok.value == "query"

    def test_string_literal(self):
        tok = tokenize("'hello'")[0]
        assert tok.type == TokenType.STRING and tok.value == "hello"

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("'abc")

    def test_empty_param(self):
        with pytest.raises(SQLError):
            tokenize(":")

    def test_unexpected_character(self):
        with pytest.raises(SQLError):
            tokenize("SELECT #")

    def test_comparison_operators(self):
        toks = tokenize("<= < >= > = != <>")
        types = [t.type for t in toks[:-1]]
        assert types == [
            TokenType.LE,
            TokenType.LT,
            TokenType.GE,
            TokenType.GT,
            TokenType.EQ,
            TokenType.NE,
            TokenType.NE,
        ]


class TestParser:
    def test_create_index(self):
        stmt = parse("CREATE INDEX myidx ON taxi USE TRIE")
        assert isinstance(stmt, CreateIndex)
        assert stmt.index_name == "myidx"
        assert stmt.table == "taxi"

    def test_select_star_where(self):
        stmt = parse("SELECT * FROM t WHERE DTW(t, :q) <= 0.005")
        assert isinstance(stmt, Select)
        assert stmt.items == ()
        assert isinstance(stmt.where, Comparison)
        assert isinstance(stmt.where.left, FunctionCall)
        assert stmt.where.left.name == "dtw"

    def test_tra_join(self):
        stmt = parse("SELECT * FROM a TRA-JOIN b ON DTW(a, b) <= 0.1")
        assert stmt.join_table.name == "b"
        assert isinstance(stmt.join_condition, Comparison)

    def test_aliases(self):
        stmt = parse("SELECT * FROM taxi AS x TRA-JOIN taxi y ON DTW(x, y) <= 0.1")
        assert stmt.table.binding == "x"
        assert stmt.join_table.binding == "y"

    def test_trajectory_literal(self):
        stmt = parse("SELECT * FROM t WHERE DTW(t, [(1, 2), (3, 4)]) <= 1")
        lit = stmt.where.left.args[1]
        assert isinstance(lit, TrajectoryLiteral)
        assert lit.points == ((1.0, 2.0), (3.0, 4.0))

    def test_negative_coordinates(self):
        stmt = parse("SELECT * FROM t WHERE DTW(t, [(-1, -2.5)]) <= 1")
        assert stmt.where.left.args[1].points == ((-1.0, -2.5),)

    def test_order_by_limit(self):
        stmt = parse("SELECT * FROM t WHERE DTW(t, :q) <= 1 ORDER BY distance DESC LIMIT 3")
        assert stmt.limit == 3
        assert not stmt.order_by[0].ascending

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT * FROM t WHERE x <= 1 + 2 * 3")
        rhs = stmt.where.right
        assert isinstance(rhs, BinaryOp) and rhs.op == "+"

    def test_garbage_rejected(self):
        with pytest.raises(SQLError):
            parse("DELETE FROM t")
        with pytest.raises(SQLError):
            parse("SELECT * FROM")
        with pytest.raises(SQLError):
            parse("SELECT * FROM t extra tokens (")


class TestOptimizer:
    def test_fold_constants(self):
        stmt = parse("SELECT * FROM t WHERE DTW(t, :q) <= 0.001 + 0.004")
        folded = fold_constants(stmt.where)
        assert isinstance(folded.right, Literal)
        assert folded.right.value == pytest.approx(0.005)

    def test_fold_nested(self):
        stmt = parse("SELECT * FROM t WHERE x <= (2 + 3) * 4 - 10 / 2")
        folded = fold_constants(stmt.where)
        assert folded.right.value == pytest.approx(15.0)

    def test_division_by_zero(self):
        stmt = parse("SELECT * FROM t WHERE x <= 1 / 0")
        with pytest.raises(SQLError):
            fold_constants(stmt.where)

    def test_split_conjuncts(self):
        stmt = parse("SELECT * FROM t WHERE a <= 1 AND b <= 2 AND c <= 3")
        assert len(split_conjuncts(stmt.where)) == 3


@pytest.fixture(scope="module")
def session():
    data = beijing_like(100, seed=77)
    s = DITASession(DITAConfig(num_global_partitions=2, trie_fanout=4, num_pivots=3))
    s.register("taxi", data)
    return s, data


class TestExecution:
    def test_create_index_and_search(self, session):
        s, data = session
        s.sql("CREATE INDEX idx ON taxi USE TRIE")
        assert s.catalog.get("taxi").is_indexed
        q = sample_queries(data, 1, seed=3)[0]
        rows = s.sql("SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.003", params={"q": q})
        d = get_distance("dtw")
        want = brute_force_search(data, d, q, 0.003)
        assert sorted(r["taxi.traj_id"] for r in rows) == want

    def test_search_without_explicit_index(self, session):
        """The planner builds the index lazily when missing."""
        s, data = session
        q = sample_queries(data, 1, seed=5)[0]
        rows = s.sql("SELECT * FROM taxi WHERE frechet(taxi, :q) <= 0.001", params={"q": q})
        d = get_distance("frechet")
        assert sorted(r["taxi.traj_id"] for r in rows) == brute_force_search(data, d, q, 0.001)

    def test_join_matches_brute_force(self, session):
        s, data = session
        rows = s.sql(
            "SELECT a.traj_id, b.traj_id FROM taxi a TRA-JOIN taxi b ON DTW(a, b) <= 0.002"
        )
        d = get_distance("dtw")
        got = sorted((r["a.traj_id"], r["b.traj_id"]) for r in rows)
        assert got == brute_force_join(data, data, d, 0.002)

    def test_projection_and_residual_filter(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=3)[0]
        rows = s.sql(
            "SELECT traj_id, distance FROM taxi "
            "WHERE DTW(taxi, :q) <= 0.005 AND traj_id != :self_id",
            params={"q": q, "self_id": -999},
        )
        for r in rows:
            assert set(r) == {"traj_id", "distance"}

    def test_order_by_limit(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=3)[0]
        rows = s.sql(
            "SELECT traj_id, distance FROM taxi WHERE DTW(taxi, :q) <= 0.005 "
            "ORDER BY distance LIMIT 2",
            params={"q": q},
        )
        assert len(rows) <= 2
        dists = [r["distance"] for r in rows]
        assert dists == sorted(dists)

    def test_unbound_param(self, session):
        s, _ = session
        with pytest.raises(SQLError):
            s.sql("SELECT * FROM taxi WHERE DTW(taxi, :missing) <= 0.001")

    def test_unknown_table(self, session):
        s, _ = session
        q = Trajectory(-1, [(0, 0), (1, 1)])
        with pytest.raises(SQLError):
            s.sql("SELECT * FROM nope WHERE DTW(nope, :q) <= 1", params={"q": q})

    def test_join_requires_similarity_predicate(self, session):
        s, _ = session
        with pytest.raises(SQLError):
            s.sql("SELECT * FROM taxi a TRA-JOIN taxi b ON a.traj_id = b.traj_id")

    def test_explain_shows_index_plan(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=3)[0]
        text = s.explain("SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.005", params={"q": q})
        assert "SimilaritySearch" in text

    def test_full_scan_fallback(self, session):
        s, data = session
        rows = s.sql("SELECT traj_id FROM taxi WHERE traj_id < 5")
        assert sorted(r["traj_id"] for r in rows) == [0, 1, 2, 3, 4]

    def test_duplicate_registration_rejected(self, session):
        s, data = session
        with pytest.raises(SQLError):
            s.register("taxi", data)


class TestDataFrame:
    def test_similarity_search(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=9)[0]
        rows = s.table("taxi").similarity_search(q, 0.003).collect()
        d = get_distance("dtw")
        assert sorted(r["taxi.traj_id"] for r in rows) == brute_force_search(data, d, q, 0.003)

    def test_chained_pipeline(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=9)[0]
        rows = (
            s.table("taxi")
            .similarity_search(q, 0.005)
            .where(lambda r: r["distance"] >= 0)
            .select("traj_id", "distance")
            .order_by("distance")
            .limit(3)
            .collect()
        )
        assert len(rows) <= 3
        assert all(set(r) == {"traj_id", "distance"} for r in rows)

    def test_tra_join(self, session):
        s, data = session
        rows = s.table("taxi").tra_join(s.table("taxi"), 0.002).collect()
        d = get_distance("dtw")
        got = sorted((r["taxi.traj_id"], r["taxi.traj_id"]) for r in rows)
        assert len(rows) == len(brute_force_join(data, data, d, 0.002))

    def test_count(self, session):
        s, data = session
        assert s.table("taxi").count() == len(data)

    def test_unknown_column(self, session):
        s, _ = session
        with pytest.raises(SQLError):
            s.table("taxi").select("bogus").collect()


class TestDataFrameKNN:
    def test_knn_rows_sorted_and_exact(self, session):
        s, data = session
        from repro.core.knn import knn_search

        q = sample_queries(data, 1, seed=21, perturb=0.0004)[0]
        rows = s.table("taxi").knn(q, 4).collect()
        assert len(rows) == 4
        dists = [r["distance"] for r in rows]
        assert dists == sorted(dists)
        engine = s.catalog.engine_for("taxi", "dtw")
        want = [t.traj_id for t, _ in knn_search(engine, q, 4)]
        assert [r["taxi.traj_id"] for r in rows] == want

    def test_knn_composes_with_select(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=22)[0]
        rows = s.table("taxi").knn(q, 3).select("traj_id", "distance").collect()
        assert all(set(r) == {"traj_id", "distance"} for r in rows)


class TestKnnSQLRewrite:
    def test_order_by_distance_limit_rewrites(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=31, perturb=0.0003)[0]
        plan = s.explain(
            "SELECT traj_id, distance FROM taxi ORDER BY DTW(taxi, :q) LIMIT 3",
            params={"q": q},
        )
        assert "KnnSearch" in plan

    def test_knn_sql_matches_knn_search(self, session):
        from repro.core.knn import knn_search

        s, data = session
        q = sample_queries(data, 1, seed=32, perturb=0.0003)[0]
        rows = s.sql(
            "SELECT traj_id, distance FROM taxi ORDER BY DTW(taxi, :q) LIMIT 5",
            params={"q": q},
        )
        engine = s.catalog.engine_for("taxi", "dtw")
        want = [t.traj_id for t, _ in knn_search(engine, q, 5)]
        assert [r["traj_id"] for r in rows] == want

    def test_descending_not_rewritten(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=33)[0]
        plan = s.explain(
            "SELECT traj_id FROM taxi ORDER BY DTW(taxi, :q) DESC LIMIT 3",
            params={"q": q},
        )
        assert "KnnSearch" not in plan

    def test_no_limit_not_rewritten(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=34)[0]
        plan = s.explain(
            "SELECT traj_id FROM taxi ORDER BY DTW(taxi, :q)", params={"q": q}
        )
        assert "KnnSearch" not in plan

    def test_residual_where_blocks_rewrite(self, session):
        """A residual WHERE keeps the fallback plan (kNN after filtering
        would change semantics)."""
        s, data = session
        q = sample_queries(data, 1, seed=35)[0]
        plan = s.explain(
            "SELECT traj_id FROM taxi WHERE traj_id < 50 "
            "ORDER BY DTW(taxi, :q) LIMIT 3",
            params={"q": q},
        )
        assert "KnnSearch" not in plan


class TestCountStar:
    def test_count_all(self, session):
        s, data = session
        assert s.sql("SELECT COUNT(*) FROM taxi") == [{"count": len(data)}]

    def test_count_with_similarity(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=41)[0]
        rows = s.sql("SELECT COUNT(*) FROM taxi WHERE DTW(taxi, :q) <= 0.005", params={"q": q})
        d = get_distance("dtw")
        assert rows == [{"count": len(brute_force_search(data, d, q, 0.005))}]

    def test_count_mixed_rejected(self, session):
        s, _ = session
        with pytest.raises(SQLError):
            s.sql("SELECT COUNT(*), traj_id FROM taxi")


class TestExplainStatement:
    def test_parse_explain(self):
        from repro.sql.ast import Explain

        stmt = parse("EXPLAIN SELECT * FROM t")
        assert isinstance(stmt, Explain)
        assert not stmt.analyze
        assert isinstance(stmt.statement, Select)

    def test_parse_explain_analyze(self):
        from repro.sql.ast import Explain

        stmt = parse("EXPLAIN ANALYZE SELECT * FROM t")
        assert isinstance(stmt, Explain)
        assert stmt.analyze

    def test_parse_explain_create(self):
        from repro.sql.ast import Explain

        stmt = parse("EXPLAIN CREATE INDEX i ON t USE TRIE")
        assert isinstance(stmt, Explain)
        assert isinstance(stmt.statement, CreateIndex)

    def test_explain_without_statement_rejected(self):
        with pytest.raises(SQLError):
            parse("EXPLAIN")

    def test_sql_explain_returns_plan_rows(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=1)[0]
        rows = s.sql(
            "EXPLAIN SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01",
            params={"q": q},
        )
        text = "\n".join(r["plan"] for r in rows)
        assert "SimilaritySearch" in text

    def test_explain_analyze_create_rejected(self, session):
        s, _ = session
        with pytest.raises(SQLError):
            s.sql("EXPLAIN ANALYZE CREATE INDEX i2 ON taxi USE TRIE")


class TestExplainAnalyze:
    def test_search_breakdown_and_rows(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=1)[0]
        res = s.explain_analyze(
            "SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01", params={"q": q}
        )
        direct = s.sql(
            "SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01", params={"q": q}
        )
        assert len(res.rows) == len(direct)
        assert "SimilaritySearch" in res.text
        assert "search.partition" in res.text
        assert f"rows: {len(direct)}" in res.text

    def test_join_breakdown_reconciles_with_report(self, session):
        """The acceptance criterion: the per-stage totals of an EXPLAIN
        ANALYZE'd TRA-JOIN reconcile with the ExecutionReport of the same
        run."""
        from repro.obs import stage_rows, worker_span_seconds

        s, _ = session
        res = s.explain_analyze(
            "SELECT a.traj_id, b.traj_id, distance "
            "FROM taxi a TRA-JOIN taxi b ON DTW(a, b) <= 0.005"
        )
        assert res.rows  # the join produced pairs
        rows = stage_rows(res.spans)
        accounted = sum(r["seconds"] for r in rows if r["indent"] == 0)
        busy_total = sum(res.report.worker_times.values())
        assert accounted == pytest.approx(busy_total, abs=1e-9)
        per_worker = worker_span_seconds(res.spans)
        for wid, busy in res.report.worker_times.items():
            assert per_worker.get(wid, 0.0) == pytest.approx(busy, abs=1e-9)
        # the registry agrees with the row count
        assert res.registry.value("join.result_pairs") == len(res.rows)
        assert "join.chunk" in res.text

    def test_explain_analyze_accepts_prefixed_text(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=1)[0]
        a = s.explain_analyze(
            "EXPLAIN ANALYZE SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01",
            params={"q": q},
        )
        b = s.explain_analyze(
            "SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01", params={"q": q}
        )
        assert a.text == b.text

    def test_scan_without_index_still_reports(self, session):
        s, _ = session
        res = s.explain_analyze("SELECT * FROM taxi LIMIT 3")
        assert len(res.rows) == 3
        assert res.report.worker_times == {}

    def test_sql_explain_analyze_returns_text_rows(self, session):
        s, data = session
        q = sample_queries(data, 1, seed=1)[0]
        rows = s.sql(
            "EXPLAIN ANALYZE SELECT * FROM taxi WHERE DTW(taxi, :q) <= 0.01",
            params={"q": q},
        )
        text = "\n".join(r["plan"] for r in rows)
        assert "accounted" in text and "report:" in text
