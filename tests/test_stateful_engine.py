"""Hypothesis stateful test: the live engine tracks a model under a random
sequence of inserts, removes and searches."""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine
from repro.datagen import citywide_dataset
from repro.distances import get_distance
from repro.trajectory import Trajectory

coords = st.floats(0, 0.2, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=6)


class EngineMachine(RuleBasedStateMachine):
    """Model-based test: a dict of trajectories mirrors the engine."""

    @initialize()
    def setup(self):
        base = list(citywide_dataset(12, seed=99))
        cfg = DITAConfig(
            num_global_partitions=2, trie_fanout=2, num_pivots=2, trie_leaf_capacity=2, cell_size=0.01
        )
        self.engine = DITAEngine(base, cfg)
        self.model = {t.traj_id: t for t in base}
        self.next_id = 1_000_000
        self.distance = get_distance("dtw")

    @rule(points=point_lists)
    def insert(self, points):
        t = Trajectory(self.next_id, np.asarray(points))
        self.next_id += 1
        self.engine.insert(t)
        self.model[t.traj_id] = t

    @precondition(lambda self: len(self.model) > 3)
    @rule(pick=st.integers(0, 10_000))
    def remove(self, pick):
        tid = sorted(self.model)[pick % len(self.model)]
        assert self.engine.remove(tid)
        del self.model[tid]

    @rule(pick=st.integers(0, 10_000), tau=st.floats(0.0, 0.05))
    def search_matches_model(self, pick, tau):
        tid = sorted(self.model)[pick % len(self.model)]
        q = self.model[tid]
        got = self.engine.search_ids(q, tau)
        want = sorted(
            t for t, traj in self.model.items()
            if self.distance.compute(traj.points, q.points) <= tau
        )
        assert got == want

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "engine"):
            assert len(self.engine) == len(self.model)


EngineMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestEngineStateful = EngineMachine.TestCase
