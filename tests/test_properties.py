"""Cross-module property tests: the system-level invariants of DESIGN.md §5.

These generate whole random *datasets* (not just trajectory pairs) and
assert that the full pipeline — partitioning, global index, trie,
verification — returns exactly the brute-force answer for randomly drawn
queries and thresholds, under DTW and Fréchet.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine
from repro.distances import get_distance
from repro.trajectory import Trajectory

coord = st.floats(0, 10, allow_nan=False, allow_infinity=False)


@st.composite
def datasets(draw, min_n=3, max_n=14):
    n = draw(st.integers(min_n, max_n))
    trajs = []
    for i in range(n):
        length = draw(st.integers(1, 8))
        pts = [[draw(coord), draw(coord)] for _ in range(length)]
        trajs.append(Trajectory(i, np.asarray(pts)))
    return trajs


@st.composite
def engine_cases(draw):
    trajs = draw(datasets())
    q_idx = draw(st.integers(0, len(trajs) - 1))
    tau = draw(st.floats(0.0, 12.0))
    ng = draw(st.integers(1, 3))
    k = draw(st.integers(0, 3))
    return trajs, trajs[q_idx], tau, ng, k


def _cfg(ng: int, k: int) -> DITAConfig:
    return DITAConfig(
        num_global_partitions=ng,
        trie_fanout=2,
        num_pivots=k,
        trie_leaf_capacity=2,
        cell_size=1.0,
    )


class TestSearchEqualsBruteForce:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(engine_cases())
    def test_dtw(self, case):
        trajs, query, tau, ng, k = case
        engine = DITAEngine(trajs, _cfg(ng, k))
        d = get_distance("dtw")
        got = engine.search_ids(query, tau)
        want = sorted(t.traj_id for t in trajs if d.compute(t.points, query.points) <= tau)
        assert got == want

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(engine_cases())
    def test_frechet(self, case):
        trajs, query, tau, ng, k = case
        engine = DITAEngine(trajs, _cfg(ng, k), distance="frechet")
        d = get_distance("frechet")
        got = engine.search_ids(query, tau)
        want = sorted(t.traj_id for t in trajs if d.compute(t.points, query.points) <= tau)
        assert got == want


class TestJoinEqualsBruteForce:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(datasets(min_n=3, max_n=10), st.floats(0.0, 8.0))
    def test_dtw_self_join(self, trajs, tau):
        engine = DITAEngine(trajs, _cfg(2, 2))
        d = get_distance("dtw")
        got = sorted((a, b) for a, b, _ in engine.join(engine, tau))
        want = sorted(
            (a.traj_id, b.traj_id)
            for a in trajs
            for b in trajs
            if d.compute(a.points, b.points) <= tau
        )
        assert got == want


class TestIndexStructure:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(datasets(), st.integers(1, 3), st.integers(0, 4))
    def test_every_trajectory_indexed_once(self, trajs, ng, k):
        engine = DITAEngine(trajs, _cfg(ng, k))
        stored = sorted(
            int(i)
            for trie in engine.tries.values()
            for i in trie.dataset.ids_of(np.asarray(trie.all_rows(), dtype=np.int64))
        )
        assert stored == sorted(t.traj_id for t in trajs)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(datasets(), st.integers(1, 3))
    def test_partition_meta_covers(self, trajs, ng):
        engine = DITAEngine(trajs, _cfg(ng, 2))
        for pid, part in engine.partitions.items():
            meta = engine.global_index.meta(pid)
            for t in part:
                assert meta.mbr_first.contains_point(t.first)
                assert meta.mbr_last.contains_point(t.last)
