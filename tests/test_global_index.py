"""Tests for partitioning and the global index (Sections 4.2.1-4.2.2)."""

import numpy as np
import pytest

from repro.core.adapters import DTWAdapter, EDRAdapter, FrechetAdapter
from repro.core.config import DITAConfig
from repro.core.global_index import GlobalIndex, partition_trajectories
from repro.datagen import citywide_dataset, random_walk_dataset
from repro.distances.dtw import dtw
from repro.trajectory import Trajectory


@pytest.fixture(scope="module")
def city():
    return citywide_dataset(150, seed=21)


@pytest.fixture(scope="module")
def partitions(city):
    return partition_trajectories(list(city), 3)


@pytest.fixture(scope="module")
def gindex(partitions):
    return GlobalIndex(partitions, DITAConfig(num_global_partitions=3))


class TestPartitioning:
    def test_every_trajectory_once(self, city, partitions):
        ids = sorted(t.traj_id for p in partitions for t in p)
        assert ids == sorted(t.traj_id for t in city)

    def test_partition_count(self, partitions):
        assert len(partitions) <= 9  # NG * NG

    def test_roughly_balanced(self, partitions):
        sizes = [len(p) for p in partitions if p]
        assert max(sizes) <= 3 * min(sizes) + 3

    def test_empty_dataset(self):
        assert partition_trajectories([], 4) == []

    def test_single_trajectory(self):
        parts = partition_trajectories([Trajectory(1, [(0, 0), (1, 1)])], 4)
        assert sum(len(p) for p in parts) == 1

    def test_locality(self, partitions):
        """Trajectories in one partition share nearby first points."""
        for part in partitions:
            if len(part) < 2:
                continue
            firsts = np.asarray([t.first for t in part])
            spread = np.max(firsts, axis=0) - np.min(firsts, axis=0)
            assert np.all(spread <= 0.25)  # city extent is 0.2


class TestGlobalIndex:
    def test_partition_meta(self, gindex, partitions):
        assert len(gindex) == sum(1 for p in partitions if p)
        for meta in gindex.partitions_meta:
            part = partitions[meta.partition_id]
            assert meta.size == len(part)
            for t in part:
                assert meta.mbr_first.contains_point(t.first)
                assert meta.mbr_last.contains_point(t.last)

    def test_relevant_partitions_sound_for_dtw(self, gindex, partitions, city):
        """Any partition holding a true answer must be reported relevant."""
        adapter = DTWAdapter()
        tau = 0.005
        for q in list(city)[:8]:
            relevant = set(gindex.relevant_partitions(q.points, tau, adapter))
            for pid, part in enumerate(partitions):
                if any(dtw(t.points, q.points) <= tau for t in part):
                    assert pid in relevant

    def test_relevant_prunes_far_queries(self, gindex):
        q = np.array([(99.0, 99.0), (99.5, 99.5)])
        assert gindex.relevant_partitions(q, 0.001, DTWAdapter()) == []

    def test_frechet_mode_individual_thresholds(self, gindex, city):
        q = list(city)[0]
        rel = gindex.relevant_partitions(q.points, 0.01, FrechetAdapter())
        assert isinstance(rel, list)

    def test_edit_distances_keep_all(self, gindex, city):
        q = list(city)[0]
        rel = gindex.relevant_partitions(q.points, 2, EDRAdapter(epsilon=0.001))
        assert len(rel) == len(gindex)

    def test_meta_lookup(self, gindex):
        pid = gindex.partitions_meta[0].partition_id
        assert gindex.meta(pid).partition_id == pid

    def test_size_bytes(self, gindex):
        assert gindex.size_bytes() > 0

    def test_relevant_for_mbr_pairs(self, gindex):
        meta = gindex.partitions_meta[0]
        rel = gindex.relevant_partitions_for_mbr(meta.mbr_first, meta.mbr_last, 0.01)
        assert meta.partition_id in rel
