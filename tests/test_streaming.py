"""Streaming ingestion: the stateful differential-test harness.

The headline invariant: **any** interleaving of appends, extends,
removals, delta flushes, generation merges and online repartitionings
leaves the engine answering every query — results *and* ``SearchStats``
— byte-identically to a freshly bulk-built engine over the same logical
dataset, for all six distance adapters, on both execution backends.

``StreamingMachine`` drives random interleavings (hypothesis stateful
testing) against two oracles per query: a bulk-built
:meth:`DITAEngine.from_partitions` twin for the byte-identical contract,
and a brute-force scan of the model dict for exactness.  Deterministic
tests below pin the individual mechanisms (delta overflow, generation
lifecycle, repartition equivalence, process-backend parity).
"""

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro import DITAConfig, DITAEngine
from repro.core.adapters import EDRAdapter, ERPAdapter, LCSSAdapter, get_adapter
from repro.core.search import SearchStats
from repro.datagen import citywide_dataset, sample_queries
from repro.storage import CURRENT_NAME, GenerationalStore
from repro.trajectory import Trajectory

# (name, adapter factory, [taus]) — EDR/LCSS thresholds are edit counts
ADAPTERS = [
    ("dtw", lambda: get_adapter("dtw"), [0.002, 0.01]),
    ("frechet", lambda: get_adapter("frechet"), [0.002, 0.008]),
    ("hausdorff", lambda: get_adapter("hausdorff"), [0.001, 0.005]),
    ("edr", lambda: EDRAdapter(epsilon=0.0005), [1, 3]),
    ("lcss", lambda: LCSSAdapter(epsilon=0.0005, delta=3), [1, 3]),
    ("erp", lambda: ERPAdapter(ndim=2), [0.005, 0.02]),
]

CFG = DITAConfig(
    num_global_partitions=2,
    trie_fanout=3,
    num_pivots=2,
    trie_leaf_capacity=3,
    delta_max_rows=6,
    cell_size=0.01,
)


def stats_tuple(s: SearchStats):
    """Every counter a search reports — the byte-identical contract."""
    return (
        s.relevant_partitions,
        s.filter.nodes_visited,
        s.filter.nodes_pruned,
        s.filter.candidates,
        s.verify.pairs,
        s.verify.exact_computed,
        s.verify.accepted,
    )


def bulk_twin(engine: DITAEngine, make_adapter) -> DITAEngine:
    """A freshly bulk-built engine adopting the streamed engine's live
    partition assignment (compacted, so row numbering lines up)."""
    engine._sync_streams()
    return DITAEngine.from_partitions(
        {pid: engine.partition(pid).compact() for pid in engine.partition_pids()},
        engine.config,
        make_adapter(),
    )


coords = st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=6)


class StreamingMachine(RuleBasedStateMachine):
    """A dict of id -> points mirrors the engine through streamed writes,
    merges and repartitionings; queries are differentially checked."""

    @initialize(adapter_idx=st.integers(0, len(ADAPTERS) - 1))
    def setup(self, adapter_idx):
        self.name, self.make_adapter, self.taus = ADAPTERS[adapter_idx]
        base = list(citywide_dataset(14, seed=99))
        self.engine = DITAEngine(base, CFG, self.make_adapter())
        self.gens_root = tempfile.mkdtemp(prefix="repro-gens-")
        self.engine.attach_generations(self.gens_root)
        self.model = {t.traj_id: np.asarray(t.points, dtype=np.float64) for t in base}
        self.distance = self.make_adapter().distance()
        self.next_id = 1_000_000

    def teardown(self):
        if hasattr(self, "engine"):
            self.engine.shutdown()
            shutil.rmtree(self.gens_root, ignore_errors=True)

    # ---- writes ------------------------------------------------------ #

    @rule(points=point_lists)
    def append(self, points):
        pts = np.asarray(points, dtype=np.float64)
        self.engine.append_trajectory(self.next_id, pts)
        self.model[self.next_id] = pts
        self.next_id += 1

    @precondition(lambda self: len(self.model) > 0)
    @rule(pick=st.integers(0, 10_000), points=point_lists)
    def extend(self, pick, points):
        tid = sorted(self.model)[pick % len(self.model)]
        extra = np.asarray(points, dtype=np.float64)
        self.engine.extend_trajectory(tid, extra)
        self.model[tid] = np.concatenate([self.model[tid], extra], axis=0)

    @precondition(lambda self: len(self.model) > 3)
    @rule(pick=st.integers(0, 10_000))
    def remove(self, pick):
        tid = sorted(self.model)[pick % len(self.model)]
        assert self.engine.remove_trajectory(tid)
        del self.model[tid]

    # ---- maintenance ------------------------------------------------- #

    @rule()
    def flush(self):
        self.engine.flush_deltas()
        assert self.engine.n_pending == 0

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def merge(self):
        before = self.engine.generations.generation
        gen = self.engine.merge(prune=True)
        assert gen == before + 1

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def repartition(self):
        self.engine.repartition()

    # ---- queries ----------------------------------------------------- #

    @precondition(lambda self: len(self.model) > 0)
    @rule(pick=st.integers(0, 10_000), tau_idx=st.integers(0, 1))
    def query_matches_bulk_rebuild(self, pick, tau_idx):
        tid = sorted(self.model)[pick % len(self.model)]
        q = Trajectory(-1, self.model[tid])
        tau = self.taus[tau_idx % len(self.taus)]
        twin = bulk_twin(self.engine, self.make_adapter)
        s_live, s_twin = SearchStats(), SearchStats()
        live = self.engine.search_batch_rows([q], [tau], [s_live])
        bulk = twin.search_batch_rows([q], [tau], [s_twin])
        assert live == bulk, (self.name, tau)
        assert stats_tuple(s_live) == stats_tuple(s_twin), (self.name, tau)
        # and both are *right*: brute force over the model
        got = sorted(
            int(self.engine.partition(pid).traj_ids[row]) for pid, row, _ in live[0]
        )
        want = sorted(
            t
            for t, pts in self.model.items()
            if self.distance.compute(pts, q.points) <= tau
        )
        assert got == want, (self.name, tau)

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "engine"):
            assert len(self.engine) == len(self.model)


StreamingMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=10, deadline=None
)
TestStreamingStateful = StreamingMachine.TestCase


# --------------------------------------------------------------------- #
# deterministic mechanism tests
# --------------------------------------------------------------------- #


@pytest.fixture()
def small_engine():
    eng = DITAEngine(list(citywide_dataset(20, seed=7)), CFG, "dtw")
    yield eng
    eng.shutdown()


def _scripted_writes(engine, rng):
    """A fixed append/extend/remove script exercising every delta path."""
    new_ids = []
    for k in range(8):
        pts = rng.random((4, 2)) * 0.05 + 0.05
        engine.append_trajectory(5_000 + k, pts)
        new_ids.append(5_000 + k)
    engine.extend_trajectory(new_ids[0], rng.random((2, 2)) * 0.05)  # pending extend
    base_ids = sorted(engine._id_map())[:3]
    engine.extend_trajectory(base_ids[0], rng.random((3, 2)) * 0.05)  # base shadow
    assert engine.remove_trajectory(base_ids[1])  # base removal
    assert engine.remove_trajectory(new_ids[1])  # pending removal
    return new_ids


class TestDeltaMechanics:
    def test_append_is_buffered_until_flush(self, small_engine):
        n0 = len(small_engine)
        small_engine.append_trajectory(9_000, [[0.01, 0.01], [0.02, 0.02]])
        assert small_engine.n_pending == 1
        assert len(small_engine) == n0 + 1  # len counts pending rows
        small_engine.flush_deltas()
        assert small_engine.n_pending == 0
        assert len(small_engine) == n0 + 1
        assert small_engine.trajectory(9_000).traj_id == 9_000

    def test_auto_flush_at_delta_max_rows(self):
        eng = DITAEngine(
            list(citywide_dataset(10, seed=7)),
            # one global partition, so every append shares one delta
            CFG.with_options(delta_max_rows=3, num_global_partitions=1),
            "dtw",
        )
        for k in range(2):
            eng.append_trajectory(9_100 + k, [[0.01 * k, 0.01], [0.02, 0.02]])
        assert eng.n_pending == 2
        eng.append_trajectory(9_102, [[0.03, 0.01], [0.02, 0.02]])
        # the third buffered row tripped the partition's overflow flush
        assert eng.n_pending == 0

    def test_duplicate_append_raises(self, small_engine):
        small_engine.append_trajectory(9_000, [[0.01, 0.01]])
        with pytest.raises(ValueError, match="already present"):
            small_engine.append_trajectory(9_000, [[0.03, 0.03]])

    def test_extend_unknown_raises_remove_unknown_is_false(self, small_engine):
        with pytest.raises(KeyError):
            small_engine.extend_trajectory(424_242, [[0.0, 0.0]])
        assert small_engine.remove_trajectory(424_242) is False

    def test_flush_with_no_deltas_is_a_noop(self, small_engine):
        version = small_engine._mutations
        assert small_engine.flush_deltas() == 0
        assert small_engine._mutations == version  # no index refresh happened

    def test_scripted_writes_match_bulk_twin(self, small_engine):
        rng = np.random.default_rng(11)
        _scripted_writes(small_engine, rng)
        queries = sample_queries(list(citywide_dataset(20, seed=7)), 3, seed=5)
        twin = bulk_twin(small_engine, lambda: get_adapter("dtw"))
        taus = [0.004] * len(queries)
        s1 = [SearchStats() for _ in queries]
        s2 = [SearchStats() for _ in queries]
        assert small_engine.search_batch_rows(queries, taus, s1) == twin.search_batch_rows(
            queries, taus, s2
        )
        assert [stats_tuple(s) for s in s1] == [stats_tuple(s) for s in s2]


class TestGenerations:
    def test_lifecycle_commit_tombstone_prune(self, small_engine, tmp_path):
        root = tmp_path / "gens"
        gens = small_engine.attach_generations(root)
        assert gens.generation == 0
        small_engine.append_trajectory(9_000, [[0.01, 0.01], [0.02, 0.02]])
        assert small_engine.merge() == 1
        assert (root / "gen-00001").is_dir()
        small_engine.append_trajectory(9_001, [[0.05, 0.01], [0.02, 0.02]])
        assert small_engine.merge() == 2
        assert gens.tombstoned() == [1]
        assert (root / "gen-00001").is_dir()  # tombstoned, not deleted
        assert gens.prune() == [1]
        assert not (root / "gen-00001").exists()
        assert (root / "gen-00002").is_dir()
        # a fresh reader adopts the live generation and answers identically
        reopened = DITAEngine.from_generations(root, distance="dtw", config=CFG)
        q = sample_queries(list(citywide_dataset(20, seed=7)), 1, seed=5)[0]
        assert reopened.search_ids(q, 0.004) == small_engine.search_ids(q, 0.004)

    def test_merge_requires_attached_generations(self, small_engine):
        with pytest.raises(ValueError, match="attach_generations"):
            small_engine.merge()

    def test_merge_rebases_engine_onto_new_generation(self, small_engine, tmp_path):
        small_engine.attach_generations(tmp_path / "gens")
        small_engine.append_trajectory(9_000, [[0.01, 0.01], [0.02, 0.02]])
        small_engine.merge()
        # post-merge the engine is store-backed and unmutated: process
        # workers would map the generation blocks directly (no spill)
        assert small_engine._store is not None
        assert small_engine._mutations == 0
        path, dead = small_engine._ensure_snapshot()
        assert "gen-00001" in path and dead == ()

    def test_maybe_merge_trips_on_write_fraction(self, tmp_path):
        eng = DITAEngine(
            list(citywide_dataset(20, seed=7)), CFG.with_options(merge_trigger=0.2), "dtw"
        )
        assert not eng.maybe_merge()  # no generations attached
        gens = eng.attach_generations(tmp_path / "gens")
        assert not eng.maybe_merge()  # nothing written yet
        for k in range(5):  # 5 writes / ~25 rows ≥ 0.2
            eng.append_trajectory(9_200 + k, [[0.01 * k, 0.01], [0.02, 0.02]])
        assert eng.maybe_merge()
        assert gens.generation == 1
        assert not eng.maybe_merge()  # counter reset by the merge

    def test_crashed_staging_is_cleared_by_next_begin(self, tmp_path):
        gens = GenerationalStore.init(tmp_path / "gens")
        staging, gen = gens.begin()
        (staging / "garbage").write_text("partial write")
        # simulate a crash: no commit/abort; a new writer starts over
        staging2, gen2 = gens.begin()
        assert gen2 == gen and staging2 == staging
        assert not (staging / "garbage").exists()
        assert gens.generation == 0
        assert (tmp_path / "gens" / CURRENT_NAME).is_file()


class TestRepartition:
    def _skewed(self):
        eng = DITAEngine(list(citywide_dataset(24, seed=7)), CFG, "dtw")
        rng = np.random.default_rng(3)
        for k in range(24):  # pile new rows into one hot corner
            pts = rng.random((4, 2)) * 0.004 + 0.19
            eng.append_trajectory(7_000 + k, pts)
        return eng

    def test_skew_ratio_sees_pending_rows(self):
        eng = self._skewed()
        assert eng.skew_ratio() > 1.5

    def test_repartition_reduces_skew_and_preserves_answers(self):
        eng = self._skewed()
        eng._sync_streams()
        before = eng.skew_ratio()
        logical = [eng.trajectory(t) for pid in eng.partition_pids() for t in eng.partition(pid).ids]
        assert eng.repartition()
        assert eng.skew_ratio() < before
        # equivalent to a fresh bulk build over the same logical dataset
        fresh = DITAEngine(logical, CFG, "dtw")
        queries = sample_queries(logical, 3, seed=5)
        for q in queries:
            s1, s2 = SearchStats(), SearchStats()
            got = sorted(
                (int(eng.partition(p).traj_ids[r]), round(d, 12))
                for p, r, d in eng.search_batch_rows([q], [0.004], [s1])[0]
            )
            want = sorted(
                (int(fresh.partition(p).traj_ids[r]), round(d, 12))
                for p, r, d in fresh.search_batch_rows([q], [0.004], [s2])[0]
            )
            assert got == want
            assert stats_tuple(s1) == stats_tuple(s2)

    def test_maybe_repartition_threshold(self):
        eng = self._skewed()
        eng.config = eng.config.with_options(repartition_skew_ratio=eng.skew_ratio() + 1)
        assert not eng.maybe_repartition()
        eng.config = eng.config.with_options(repartition_skew_ratio=1.01)
        assert eng.maybe_repartition()
        assert eng.skew_ratio() <= 1.5


class TestProcessBackendParity:
    """The scripted differential, on the real multi-core backend: streamed
    writes on a process-backed engine answer byte-identically to a
    simulated bulk-built twin, for all six adapters."""

    @pytest.mark.parametrize("name,make_adapter,taus", ADAPTERS, ids=[a[0] for a in ADAPTERS])
    def test_streamed_process_engine_matches_bulk_twin(self, name, make_adapter, taus):
        base = list(citywide_dataset(20, seed=7))
        eng = DITAEngine(
            base, CFG.with_options(backend="process", num_processes=2), make_adapter()
        )
        try:
            rng = np.random.default_rng(11)
            _scripted_writes(eng, rng)
            twin = bulk_twin(eng, make_adapter)  # simulated backend
            queries = sample_queries(base, 2, seed=5)
            tau_list = [taus[i % len(taus)] for i in range(len(queries))]
            s1 = [SearchStats() for _ in queries]
            s2 = [SearchStats() for _ in queries]
            live = eng.search_batch_rows(queries, tau_list, s1)
            bulk = twin.search_batch_rows(queries, tau_list, s2)
            assert live == bulk, name
            assert [stats_tuple(s) for s in s1] == [stats_tuple(s) for s in s2], name
        finally:
            eng.shutdown()
