"""DIT005's runtime half: every registered bound really is a lower bound.

The static rule guarantees each distance class *declares* a bound (or opts
out with a justification); this suite pins admissibility —
``lower_bound(t, q) <= compute(t, q)`` — on random data, because the trie's
pruning is only exact when that inequality holds.
"""

import numpy as np
import pytest

from repro.distances import get_distance
from repro.distances.base import TrajectoryDistance

BOUNDED = ["dtw", "frechet", "hausdorff", "edr", "erp"]
_TOL = 1e-9


def random_pair(rng):
    m = int(rng.integers(2, 24))
    n = int(rng.integers(2, 24))
    t = rng.random((m, 2)).cumsum(axis=0) * 0.01
    q = rng.random((n, 2)).cumsum(axis=0) * 0.01
    return t, q


class TestAdmissibility:
    @pytest.mark.parametrize("name", BOUNDED)
    def test_lower_bound_never_exceeds_distance(self, name):
        dist = get_distance(name)
        rng = np.random.default_rng(20260805)
        for _ in range(50):
            t, q = random_pair(rng)
            lb = dist.lower_bound(t, q)
            exact = dist.compute(t, q)
            assert lb <= exact + _TOL, f"{name}: lb {lb} > exact {exact}"

    @pytest.mark.parametrize("name", BOUNDED)
    def test_lower_bound_is_nonnegative(self, name):
        dist = get_distance(name)
        rng = np.random.default_rng(5)
        t, q = random_pair(rng)
        assert dist.lower_bound(t, q) >= 0.0

    def test_identical_trajectories_bound_zero(self):
        rng = np.random.default_rng(11)
        t, _ = random_pair(rng)
        for name in BOUNDED:
            assert get_distance(name).lower_bound(t, t) <= _TOL


class TestExemption:
    def test_lcss_opts_out_with_justification(self):
        dist = get_distance("lcss")
        assert dist.lower_bound_exempt
        rng = np.random.default_rng(3)
        t, q = random_pair(rng)
        # the exempt default is the trivial (still admissible) bound
        assert dist.lower_bound(t, q) == 0.0

    def test_unexempt_subclass_must_implement(self):
        class Incomplete(TrajectoryDistance):
            def compute(self, t, q):
                return 0.0

        with pytest.raises(NotImplementedError, match="DIT005"):
            Incomplete().lower_bound(np.zeros((2, 2)), np.zeros((2, 2)))
