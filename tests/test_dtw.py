"""Tests for DTW and its threshold/double-direction/banded variants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.dtw import (
    DTWDistance,
    dtw,
    dtw_double_direction,
    dtw_threshold,
    dtw_window,
)

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_len=1, max_len=10):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


T1 = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)
T3 = np.array([(1, 1), (4, 1), (4, 3), (4, 5), (4, 6), (5, 6)], float)


class TestExactDTW:
    def test_paper_value(self):
        """DTW(T1, T3) = 5.41 per the paper's Table 1 walkthrough."""
        assert dtw(T1, T3) == pytest.approx(5.41, abs=0.01)

    def test_identity(self):
        assert dtw(T1, T1) == 0.0

    def test_symmetry(self):
        assert dtw(T1, T3) == pytest.approx(dtw(T3, T1))

    def test_single_point_rows(self):
        """n = 1 base case: sum of distances to the single point."""
        t = np.array([(0, 0), (3, 4)], float)
        q = np.array([(0, 0)], float)
        assert dtw(t, q) == pytest.approx(5.0)

    def test_both_single(self):
        assert dtw(np.array([(0, 0)], float), np.array([(1, 0)], float)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw(np.empty((0, 2)), T1)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dtw(np.zeros((2, 2)), np.zeros((2, 3)))

    @given(trajectories(), trajectories())
    def test_non_negative(self, t, q):
        assert dtw(t, q) >= 0

    @given(trajectories())
    def test_self_distance_zero(self, t):
        assert dtw(t, t) == pytest.approx(0.0, abs=1e-9)

    @given(trajectories(), trajectories())
    def test_bounded_below_by_endpoints(self, t, q):
        """DTW always pays the (1,1) and (m,n) cells."""
        lb = float(np.linalg.norm(t[0] - q[0]))
        if t.shape[0] > 1 or q.shape[0] > 1:
            lb_end = float(np.linalg.norm(t[-1] - q[-1]))
        else:
            lb_end = 0.0
        assert dtw(t, q) >= max(lb, lb_end) - 1e-9


class TestThresholdDTW:
    def test_exact_when_within(self):
        d = dtw(T1, T3)
        assert dtw_threshold(T1, T3, d + 0.01) == pytest.approx(d)

    def test_inf_when_beyond(self):
        assert dtw_threshold(T1, T3, 5.0) == math.inf

    def test_tau_zero_identical(self):
        assert dtw_threshold(T1, T1, 0.0) == 0.0

    @settings(max_examples=80)
    @given(trajectories(), trajectories(), st.floats(0.1, 50))
    def test_agrees_with_exact(self, t, q, tau):
        d = dtw(t, q)
        dt = dtw_threshold(t, q, tau)
        if d <= tau:
            assert dt == pytest.approx(d, rel=1e-9, abs=1e-9)
        else:
            assert dt == math.inf


class TestDoubleDirection:
    def test_paper_value_within(self):
        assert dtw_double_direction(T1, T3, 6.0) == pytest.approx(5.41, abs=0.01)

    def test_beyond_inf(self):
        assert dtw_double_direction(T1, T3, 5.0) == math.inf

    @settings(max_examples=80)
    @given(trajectories(), trajectories(), st.floats(0.1, 50))
    def test_agrees_with_exact(self, t, q, tau):
        d = dtw(t, q)
        dd = dtw_double_direction(t, q, tau)
        if d <= tau:
            assert dd == pytest.approx(d, rel=1e-9, abs=1e-9)
        else:
            assert dd == math.inf

    def test_single_row(self):
        t = np.array([(0, 0)], float)
        q = np.array([(1, 0), (2, 0)], float)
        assert dtw_double_direction(t, q, 10) == pytest.approx(3.0)


class TestWindowedDTW:
    def test_full_window_equals_exact(self):
        assert dtw_window(T1, T3, 10) == pytest.approx(dtw(T1, T3))

    def test_narrow_window_upper_bounds(self):
        assert dtw_window(T1, T3, 1) >= dtw(T1, T3) - 1e-9

    def test_zero_window_diagonal(self):
        t = np.array([(0, 0), (1, 1)], float)
        assert dtw_window(t, t, 0) == 0.0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            dtw_window(T1, T3, -1)

    @settings(max_examples=40)
    @given(trajectories(min_len=2), st.integers(0, 12))
    def test_monotone_in_window(self, t, w):
        """Widening the band can only decrease the value."""
        q = t[::-1].copy()
        assert dtw_window(t, q, w + 2) <= dtw_window(t, q, w) + 1e-9


class TestDTWDistanceClass:
    def test_registry_behaviour(self):
        d = DTWDistance()
        assert d.name == "dtw"
        assert not d.is_metric
        assert d.accumulates
        assert d.compute(T1, T3) == pytest.approx(5.41, abs=0.01)
        assert d.similar(T1, T3, 6.0)
        assert not d.similar(T1, T3, 5.0)
