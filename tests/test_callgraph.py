"""Call-graph resolution and reachability: the interprocedural core.

Each test builds a small multi-module project from in-memory sources and
checks one resolution capability the DIT007–DIT010 rules lean on:
module-qualified functions, methods through inheritance, first-class
callables as task bodies, type inference, and deterministic witnesses.
"""

from repro.devtools.lint.callgraph import Project, module_name_for
from repro.devtools.lint.context import FileContext
from repro.devtools.lint.reachability import Reachability


def project(**files):
    """Build a Project from ``{path: source}`` keyword files (dots in
    keyword names are written as ``__``)."""
    contexts = [
        FileContext.parse(path.replace("__", "/"), source)
        for path, source in files.items()
    ]
    return Project(contexts)


class TestModuleNames:
    def test_src_layout_is_stripped(self):
        assert module_name_for("src/repro/core/engine.py") == "repro.core.engine"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_plain_layout_maps_one_to_one(self):
        assert module_name_for("benchmarks/common.py") == "benchmarks.common"


class TestFunctionResolution:
    def test_same_module_call(self):
        p = project(
            **{"pkg__a.py": "def f():\n    return g()\n\ndef g():\n    return 1\n"}
        )
        assert "pkg.a.g" in p.functions["pkg.a.f"].calls

    def test_cross_module_import(self):
        p = project(
            **{
                "pkg__a.py": "from pkg.b import helper\n\ndef f():\n    return helper()\n",
                "pkg__b.py": "def helper():\n    return 1\n",
            }
        )
        assert "pkg.b.helper" in p.functions["pkg.a.f"].calls

    def test_relative_import(self):
        p = project(
            **{
                "src__repro__core__a.py": (
                    "from .b import helper\n\ndef f():\n    return helper()\n"
                ),
                "src__repro__core__b.py": "def helper():\n    return 1\n",
            }
        )
        assert "repro.core.b.helper" in p.functions["repro.core.a.f"].calls

    def test_external_calls_are_recorded(self):
        p = project(
            **{"pkg__a.py": "import time\n\ndef f():\n    return time.time()\n"}
        )
        names = [c.name for c in p.functions["pkg.a.f"].external_calls]
        assert names == ["time.time"]

    def test_constructing_a_class_runs_its_init(self):
        p = project(
            **{
                "pkg__a.py": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "\n"
                    "def f():\n"
                    "    return C()\n"
                )
            }
        )
        assert "pkg.a.C.__init__" in p.functions["pkg.a.f"].calls


class TestMethodResolution:
    SOURCE = (
        "class Base:\n"
        "    def process(self):\n"
        "        return 1\n"
        "\n"
        "class Derived(Base):\n"
        "    def run(self):\n"
        "        return self.process()\n"
    )

    def test_self_call_resolves_through_inheritance(self):
        p = project(**{"pkg__a.py": self.SOURCE})
        assert "pkg.a.Base.process" in p.functions["pkg.a.Derived.run"].calls

    def test_linearization_is_exact_for_single_inheritance(self):
        p = project(**{"pkg__a.py": self.SOURCE})
        assert p.linearize("pkg.a.Derived") == ["pkg.a.Derived", "pkg.a.Base"]

    def test_override_wins(self):
        src = self.SOURCE + (
            "\n"
            "class Override(Derived):\n"
            "    def process(self):\n"
            "        return 2\n"
            "    def go(self):\n"
            "        return self.process()\n"
        )
        p = project(**{"pkg__a.py": src})
        assert "pkg.a.Override.process" in p.functions["pkg.a.Override.go"].calls

    def test_typed_receiver_resolves_methods(self):
        p = project(
            **{
                "pkg__a.py": (
                    "class Cluster:\n"
                    "    def run_local(self, pid, fn):\n"
                    "        return fn()\n"
                    "\n"
                    "def drive():\n"
                    "    cluster = Cluster()\n"
                    "    cluster.run_local(0, drive)\n"
                )
            }
        )
        assert "pkg.a.Cluster.run_local" in p.functions["pkg.a.drive"].calls

    def test_annotated_param_resolves_methods(self):
        p = project(
            **{
                "pkg__a.py": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                    "\n"
                    "def drive(engine: Engine):\n"
                    "    return engine.step()\n"
                )
            }
        )
        assert "pkg.a.Engine.step" in p.functions["pkg.a.drive"].calls

    def test_self_attr_type_inference(self):
        p = project(
            **{
                "pkg__a.py": (
                    "class Worker:\n"
                    "    def charge(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Cluster:\n"
                    "    def __init__(self):\n"
                    "        self.worker = Worker()\n"
                    "    def go(self):\n"
                    "        return self.worker.charge()\n"
                )
            }
        )
        assert "pkg.a.Worker.charge" in p.functions["pkg.a.Cluster.go"].calls


class TestCallablesAsArguments:
    def test_nested_def_passed_as_task_body(self):
        p = project(
            **{
                "pkg__a.py": (
                    "def submit(cluster):\n"
                    "    def body(ms=None):\n"
                    "        return 1\n"
                    "    cluster.run_local(0, body)\n"
                )
            }
        )
        sites = p.submission_sites()
        assert [(attr, body) for _, _, _, attr, body in sites] == [
            ("run_local", "pkg.a.submit.body")
        ]

    def test_lambda_passed_as_task_body(self):
        p = project(
            **{"pkg__a.py": "def submit(cluster):\n    cluster.run_local(0, lambda ms=None: 1)\n"}
        )
        (site,) = p.submission_sites()
        assert site[3] == "run_local"
        assert "<lambda:" in site[4]

    def test_method_reference_passed_as_task_body(self):
        p = project(
            **{
                "pkg__a.py": (
                    "class Engine:\n"
                    "    def rebuild(self):\n"
                    "        return []\n"
                    "    def go(self, cluster):\n"
                    "        cluster.register_rebuild(0, self.rebuild)\n"
                )
            }
        )
        (site,) = p.submission_sites()
        assert site[3] == "register_rebuild"
        assert site[4] == "pkg.a.Engine.rebuild"

    def test_module_function_passed_across_modules(self):
        p = project(
            **{
                "pkg__a.py": "def body():\n    return 1\n",
                "pkg__b.py": (
                    "from pkg.a import body\n"
                    "\n"
                    "def submit(cluster):\n"
                    "    cluster.run_on_worker(0, body)\n"
                ),
            }
        )
        (site,) = p.submission_sites()
        assert site[4] == "pkg.a.body"


class TestReachability:
    THREE_HOPS = (
        "import time\n"
        "\n"
        "def sink():\n"
        "    return time.time()\n"
        "\n"
        "def mid():\n"
        "    return sink()\n"
        "\n"
        "def top():\n"
        "    return mid()\n"
    )

    def test_find_external_returns_full_chain(self):
        p = project(**{"pkg__a.py": self.THREE_HOPS})
        reach = Reachability(p)
        witness = reach.find_external(
            "pkg.a.top", lambda c: c.name == "time.time"
        )
        assert witness is not None
        assert witness.chain == ("pkg.a.top", "pkg.a.mid", "pkg.a.sink")
        assert witness.render_chain() == "a.top -> a.mid -> a.sink"

    def test_barrier_module_blocks_traversal(self):
        p = project(
            **{
                "src__repro__cluster__clock.py": (
                    "import time\n\ndef now():\n    return time.time()\n"
                ),
                "pkg__a.py": (
                    "from repro.cluster.clock import now\n"
                    "\n"
                    "def top():\n"
                    "    return now()\n"
                ),
            }
        )
        reach = Reachability(p, barrier_modules=("repro.cluster.clock",))
        assert reach.find_external("pkg.a.top", lambda c: c.name == "time.time") is None
        unbarred = Reachability(p)
        assert (
            unbarred.find_external("pkg.a.top", lambda c: c.name == "time.time")
            is not None
        )

    def test_reaches_attr_transitively(self):
        p = project(
            **{
                "pkg__a.py": (
                    "def low(tracer):\n"
                    "    tracer.record('x', 'compute', 0, 0.0, 1.0)\n"
                    "\n"
                    "def high(tracer):\n"
                    "    low(tracer)\n"
                    "\n"
                    "def lost(tracer):\n"
                    "    return 1\n"
                )
            }
        )
        reach = Reachability(p)
        assert reach.reaches_attr("pkg.a.high", frozenset({"record"}))
        assert not reach.reaches_attr("pkg.a.lost", frozenset({"record"}))

    def test_witness_is_deterministic_across_builds(self):
        chains = []
        for _ in range(3):
            p = project(**{"pkg__a.py": self.THREE_HOPS})
            reach = Reachability(p)
            witness = reach.find_external(
                "pkg.a.top", lambda c: c.name == "time.time"
            )
            chains.append(witness.chain)
        assert len(set(chains)) == 1
