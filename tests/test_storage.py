"""The persisted columnar store: roundtrip identity, catalog pruning,
lazy cold start, typed corruption errors, and the zero-copy contract
(batch query paths must not materialize ``Trajectory`` objects for
anything but accepted results).
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.core.config import DITAConfig
from repro.core.engine import DITAEngine
from repro.core.knn import knn_search
from repro.core.search import SearchStats
from repro.datagen import beijing_like, sample_queries
from repro.storage.columnar import ColumnarDataset, partition_rows
from repro.storage.store import (
    CATALOG_NAME,
    STORAGE_FORMAT_VERSION,
    ChecksumError,
    CorruptBlockError,
    SchemaVersionError,
    StorageError,
    TrajectoryStore,
    build_store,
)

N_GROUPS = 4
ADAPTERS = ["dtw", "frechet", "edr", "lcss", "erp", "hausdorff"]


@pytest.fixture(scope="module")
def data():
    return ColumnarDataset.from_trajectories(beijing_like(80, seed=3))


@pytest.fixture()
def store(data, tmp_path):
    return build_store(data, tmp_path / "store", n_groups=N_GROUPS)


# --------------------------------------------------------------------- #
# roundtrip
# --------------------------------------------------------------------- #


class TestRoundtrip:
    def test_blocks_bit_identical_to_source_partitions(self, data, store):
        groups = [rows for rows in partition_rows(data, N_GROUPS) if rows.shape[0]]
        assert len(store.metas) == len(groups)
        for pid, rows in enumerate(groups):
            want = data.subset(rows)
            got = store.partition(pid)
            assert got.traj_ids.dtype == np.int64
            assert got.point_coords.dtype == np.float64
            assert np.array_equal(got.traj_ids, want.traj_ids)
            assert np.array_equal(got.point_starts, want.point_starts)
            assert np.array_equal(got.point_coords, want.point_coords)
            assert np.array_equal(got.firsts, want.firsts)
            assert np.array_equal(got.lasts, want.lasts)
            assert np.array_equal(got.mbr_lows, want.mbr_lows)
            assert np.array_equal(got.mbr_highs, want.mbr_highs)

    def test_blocks_are_memory_mapped(self, store):
        def mmap_backed(arr):
            a = arr
            while a is not None:
                if isinstance(a, np.memmap):
                    return True
                a = a.base
            return False

        part = store.partition(0)
        assert mmap_backed(part.point_coords)
        assert mmap_backed(part.traj_ids)
        assert mmap_backed(part.firsts)  # summaries come from disk, not recompute

    def test_catalog_counts(self, data, store):
        assert store.n_trajectories == len(data)
        assert store.n_points == data.n_points
        assert store.ndim == data.ndim
        assert sum(m.n_trajectories for m in store.metas.values()) == len(data)
        assert sum(m.n_points for m in store.metas.values()) == data.n_points

    def test_to_columnar_holds_every_trajectory(self, data, store):
        merged = store.to_columnar()
        assert sorted(merged.ids) == sorted(data.ids)
        for tid in list(data.ids)[:10]:
            assert np.array_equal(
                merged.points(merged.row_of(tid)), data.points(data.row_of(tid))
            )

    def test_rebuild_is_byte_identical(self, data, store, tmp_path):
        """Same dataset, same n_groups: every block file and the catalog
        are byte-for-byte reproducible."""
        twin = build_store(data, tmp_path / "twin", n_groups=N_GROUPS)
        a = (store.path / CATALOG_NAME).read_bytes()
        b = (twin.path / CATALOG_NAME).read_bytes()
        assert a == b
        for meta in store.metas.values():
            for name in meta.checksums:
                fa = (store.path / meta.directory / name).read_bytes()
                fb = (twin.path / meta.directory / name).read_bytes()
                assert fa == fb, (meta.directory, name)

    def test_existing_store_refused(self, data, store):
        with pytest.raises(StorageError):
            build_store(data, store.path, n_groups=N_GROUPS)

    def test_empty_dataset_roundtrip(self, tmp_path):
        store = build_store(ColumnarDataset.empty(2), tmp_path / "empty", n_groups=2)
        reopened = TrajectoryStore.open(store.path)
        assert len(reopened) == 0
        assert reopened.n_trajectories == 0
        assert len(reopened.to_columnar()) == 0

    def test_verify_clean_store(self, store):
        store.verify()  # no exception


# --------------------------------------------------------------------- #
# catalog pruning and lazy loading
# --------------------------------------------------------------------- #


class TestPruning:
    def test_no_query_returns_all(self, store):
        assert store.partition_ids() == sorted(store.metas)

    def test_pruned_ids_are_catalog_only(self, store):
        meta = store.metas[0]
        hits = store.partition_ids(meta.mbr)
        assert 0 in hits
        assert store._parts == {}  # pruning never touched block bytes

    def test_pruning_sound(self, data, store):
        """Every trajectory whose MBR intersects the probe lives in a
        partition the pruner kept."""
        meta = store.metas[0]
        probe = meta.mbr_first
        keep = set(store.partition_ids(probe))
        for pid, m in store.metas.items():
            part = store.partition(pid)
            for r in part.alive_rows():
                from repro.geometry.mbr import MBR

                t_mbr = MBR(part.mbr_lows[int(r)], part.mbr_highs[int(r)])
                if t_mbr.intersects(probe):
                    assert pid in keep


# --------------------------------------------------------------------- #
# engine parity: store-backed (lazy and eager) vs. built-from-objects
# --------------------------------------------------------------------- #


def _cfg():
    return DITAConfig(num_global_partitions=N_GROUPS, trie_fanout=3,
                      num_pivots=2, trie_leaf_capacity=4)


def _tau(name):
    return {"edr": 3.0, "lcss": 3.0, "erp": 0.05}.get(name, 0.01)


class TestEngineParity:
    @pytest.mark.parametrize("distance", ADAPTERS)
    def test_results_and_stats_match_eager_engine(self, data, store, distance):
        cfg = _cfg()
        base = DITAEngine(data, cfg, distance=distance)
        lazy = DITAEngine.from_store(store, cfg, distance=distance, lazy=True)
        cold = DITAEngine.from_store(store, cfg, distance=distance, lazy=False)
        queries = sample_queries(list(data), 4, seed=7)
        tau = _tau(distance)
        for q in queries:
            s0, s1, s2 = SearchStats(), SearchStats(), SearchStats()
            want = sorted((t.traj_id, d) for t, d in base.search(q, tau, s0))
            got_lazy = sorted((t.traj_id, d) for t, d in lazy.search(q, tau, s1))
            got_cold = sorted((t.traj_id, d) for t, d in cold.search(q, tau, s2))
            assert got_lazy == want  # distances compared bit-exactly
            assert got_cold == want
            assert s1 == s0
            assert s2 == s0

    def test_globally_pruned_partitions_never_load(self, data, store):
        engine = DITAEngine.from_store(store, _cfg(), distance="dtw", lazy=True)
        assert engine.partitions == {}
        q = list(data)[0]
        relevant = engine.global_index.relevant_partitions(
            q.points, 1e-9, engine.adapter
        )
        engine.search(q, 1e-9)
        assert set(engine.partitions) == set(relevant)
        assert set(store._parts) == set(relevant)
        if len(store.metas) > len(relevant):
            untouched = set(store.metas) - set(relevant)
            assert untouched  # the pruned blocks stayed on disk

    def test_join_parity(self, data, store):
        cfg = _cfg()
        base = DITAEngine(data, cfg)
        lazy = DITAEngine.from_store(store, cfg, lazy=True)
        want = sorted(base.self_join(0.005))
        got = sorted(lazy.self_join(0.005))
        assert got == want

    def test_knn_parity(self, data, store):
        cfg = _cfg()
        base = DITAEngine(data, cfg)
        lazy = DITAEngine.from_store(store, cfg, lazy=True)
        q = list(data)[5]
        want = [(t.traj_id, d) for t, d in knn_search(base, q, 7)]
        got = [(t.traj_id, d) for t, d in knn_search(lazy, q, 7)]
        assert got == want

    def test_updates_on_store_backed_engine(self, data, store):
        from repro.trajectory import Trajectory

        engine = DITAEngine.from_store(store, _cfg(), lazy=True)
        twin = Trajectory(90_000, list(data)[0].points + 1e-5)
        engine.insert(twin)
        assert engine.search_ids(twin, 1e-4) and 90_000 in engine.search_ids(twin, 1e-4)
        assert engine.remove(90_000)
        assert 90_000 not in engine.search_ids(twin, 1e-4)


# --------------------------------------------------------------------- #
# the zero-copy contract
# --------------------------------------------------------------------- #


def _total_materializations(engine):
    return sum(part.materializations for part in engine.partitions.values())


class TestZeroCopy:
    def test_batch_search_materializes_only_matches(self, data, store):
        engine = DITAEngine.from_store(store, _cfg(), lazy=True)
        queries = sample_queries(list(data), 5, seed=1)
        results = engine.search_batch(queries, [0.01] * len(queries))
        n_matches = sum(len(r) for r in results)
        assert n_matches > 0
        assert _total_materializations(engine) == n_matches

    def test_join_materializes_nothing(self, data, store):
        engine = DITAEngine.from_store(store, _cfg(), lazy=True)
        pairs = engine.self_join(0.005)
        assert pairs  # ids come straight from the id columns
        assert _total_materializations(engine) == 0

    def test_knn_materializes_only_winners(self, data, store):
        engine = DITAEngine.from_store(store, _cfg(), lazy=True)
        k = 6
        out = knn_search(engine, list(data)[3], k)
        assert len(out) == k
        assert _total_materializations(engine) == k


# --------------------------------------------------------------------- #
# typed failure modes
# --------------------------------------------------------------------- #


class TestCorruption:
    def test_missing_catalog(self, tmp_path):
        with pytest.raises(StorageError):
            TrajectoryStore.open(tmp_path / "nowhere")

    def test_unparseable_catalog(self, store):
        (store.path / CATALOG_NAME).write_text("{not json")
        with pytest.raises(CorruptBlockError):
            TrajectoryStore.open(store.path)

    def test_schema_version_bump(self, store):
        catalog = json.loads((store.path / CATALOG_NAME).read_text())
        catalog["format_version"] = STORAGE_FORMAT_VERSION + 1
        (store.path / CATALOG_NAME).write_text(json.dumps(catalog))
        with pytest.raises(SchemaVersionError):
            TrajectoryStore.open(store.path)

    def test_unpinned_dtype_rejected(self, store):
        catalog = json.loads((store.path / CATALOG_NAME).read_text())
        catalog["dtypes"]["coords.npy"] = "<f4"
        (store.path / CATALOG_NAME).write_text(json.dumps(catalog))
        with pytest.raises(SchemaVersionError):
            TrajectoryStore.open(store.path)

    def test_truncated_block(self, store):
        target = store.path / store.metas[0].directory / "coords.npy"
        raw = target.read_bytes()
        target.write_bytes(raw[: len(raw) // 2])
        fresh = TrajectoryStore.open(store.path)
        with pytest.raises(CorruptBlockError):
            fresh.partition(0)

    def test_missing_block_file(self, store):
        (store.path / store.metas[1].directory / "ids.npy").unlink()
        fresh = TrajectoryStore.open(store.path)
        with pytest.raises(CorruptBlockError):
            fresh.partition(1)
        with pytest.raises(CorruptBlockError):
            fresh.verify()

    def test_bitrot_caught_by_checksum(self, store):
        target = store.path / store.metas[0].directory / "coords.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        fresh = TrajectoryStore.open(store.path)
        with pytest.raises(ChecksumError):
            fresh.verify()
        with pytest.raises(ChecksumError):
            TrajectoryStore.open(store.path, verify=True)

    def test_wrong_dtype_on_disk(self, store):
        target = store.path / store.metas[0].directory / "firsts.npy"
        arr = np.load(target).astype(np.float32)
        with target.open("wb") as f:
            np.lib.format.write_array(f, arr, allow_pickle=False)
        fresh = TrajectoryStore.open(store.path)
        with pytest.raises(CorruptBlockError):
            fresh.partition(0)

    def test_shape_disagreement_with_catalog(self, store):
        target = store.path / store.metas[0].directory / "ids.npy"
        arr = np.load(target)
        with target.open("wb") as f:
            np.lib.format.write_array(f, arr[:-1], allow_pickle=False)
        fresh = TrajectoryStore.open(store.path)
        with pytest.raises(CorruptBlockError):
            fresh.partition(0)


# --------------------------------------------------------------------- #
# determinism against the memmap-backed store
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_same_seed_same_bytes(self, data, tmp_path):
        outs = []
        for name in ("a", "b"):
            store = build_store(data, tmp_path / name, n_groups=N_GROUPS)
            engine = DITAEngine.from_store(store, _cfg(), lazy=True)
            q = list(data)[2]
            matches = [(t.traj_id, d) for t, d in engine.search(q, 0.01)]
            pairs = engine.self_join(0.004)
            knn = [(t.traj_id, d) for t, d in knn_search(engine, q, 5)]
            outs.append((matches, pairs, knn))
        assert outs[0] == outs[1]
