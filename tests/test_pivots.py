"""Tests for pivot selection (Section 4.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pivots import (
    available_strategies,
    first_last_weights,
    indexing_points,
    inflection_weights,
    neighbor_weights,
    pivot_indices,
)
from repro.trajectory import Trajectory

coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


@st.composite
def point_arrays(draw, min_len=2, max_len=15):
    n = draw(st.integers(min_len, max_len))
    return np.asarray([[draw(coords), draw(coords)] for _ in range(n)])


T1_POINTS = np.array([(1, 1), (1, 2), (3, 2), (4, 4), (4, 5), (5, 5)], float)


class TestWeights:
    def test_neighbor_weights_values(self):
        w = neighbor_weights(T1_POINTS)
        # weight of point i is dist to point i-1; endpoints excluded
        assert w[0] == -np.inf and w[-1] == -np.inf
        assert w[1] == pytest.approx(1.0)       # (1,1)->(1,2)
        assert w[2] == pytest.approx(2.0)       # (1,2)->(3,2)

    def test_inflection_straight_zero(self):
        pts = np.array([(0, 0), (1, 0), (2, 0), (3, 0)], float)
        w = inflection_weights(pts)
        assert w[1] == pytest.approx(0.0, abs=1e-9)
        assert w[2] == pytest.approx(0.0, abs=1e-9)

    def test_first_last_weights(self):
        pts = np.array([(0, 0), (10, 0), (1, 0)], float)
        w = first_last_weights(pts)
        assert w[1] == pytest.approx(10.0)


class TestPivotIndices:
    def test_paper_neighbor_strategy(self):
        """Figure 1: T1's pivots under Neighbor Distance are (3,2), (4,4)."""
        idx = pivot_indices(T1_POINTS, 2, "neighbor")
        assert [tuple(T1_POINTS[i]) for i in idx] == [(3.0, 2.0), (4.0, 4.0)]

    def test_paper_inflection_strategy(self):
        """Figure 1: T1's pivots under Inflection Point are (1,2), (4,5)."""
        idx = pivot_indices(T1_POINTS, 2, "inflection")
        assert [tuple(T1_POINTS[i]) for i in idx] == [(1.0, 2.0), (4.0, 5.0)]

    def test_paper_first_last_strategy(self):
        """Figure 1: T1's pivots under First/Last Distance are (1,2), (4,5).

        Note: the paper lists these for T1; ties are broken by index.
        """
        idx = pivot_indices(T1_POINTS, 2, "first_last")
        pts = [tuple(T1_POINTS[i]) for i in idx]
        assert len(pts) == 2
        for p in pts:
            assert p not in ((1.0, 1.0), (5.0, 5.0))  # never endpoints

    def test_never_selects_endpoints(self):
        for strategy in available_strategies():
            idx = pivot_indices(T1_POINTS, 4, strategy)
            assert 0 not in idx
            assert len(T1_POINTS) - 1 not in idx

    def test_sorted_order(self):
        idx = pivot_indices(T1_POINTS, 3, "neighbor")
        assert idx == sorted(idx)

    def test_short_trajectory_fewer_pivots(self):
        pts = np.array([(0, 0), (1, 1), (2, 2)], float)
        assert len(pivot_indices(pts, 5, "neighbor")) == 1

    def test_two_point_trajectory_no_pivots(self):
        pts = np.array([(0, 0), (1, 1)], float)
        assert pivot_indices(pts, 3, "neighbor") == []

    def test_k_zero(self):
        assert pivot_indices(T1_POINTS, 0, "neighbor") == []

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            pivot_indices(T1_POINTS, -1, "neighbor")

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            pivot_indices(T1_POINTS, 2, "bogus")

    @settings(max_examples=60)
    @given(point_arrays(), st.integers(0, 6), st.sampled_from(["inflection", "neighbor", "first_last"]))
    def test_invariants(self, pts, k, strategy):
        idx = pivot_indices(pts, k, strategy)
        n = pts.shape[0]
        assert len(idx) == min(k, max(0, n - 2))
        assert len(set(idx)) == len(idx)
        assert all(0 < i < n - 1 for i in idx)
        assert idx == sorted(idx)


class TestIndexingPoints:
    def test_structure(self):
        t = Trajectory(1, T1_POINTS)
        seq = indexing_points(t, 2, "neighbor")
        assert seq.shape == (4, 2)
        assert tuple(seq[0]) == (1.0, 1.0)   # first point
        assert tuple(seq[1]) == (5.0, 5.0)   # last point
        assert tuple(seq[2]) == (3.0, 2.0)   # first pivot
        assert tuple(seq[3]) == (4.0, 4.0)   # second pivot

    def test_short_sequence_not_padded(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        seq = indexing_points(t, 4, "neighbor")
        assert seq.shape == (2, 2)

    @settings(max_examples=40)
    @given(point_arrays(), st.integers(0, 5))
    def test_length_bounds(self, pts, k):
        t = Trajectory(0, pts)
        seq = indexing_points(t, k, "neighbor")
        assert 2 <= seq.shape[0] <= k + 2
