"""Tests for the trie local index (Sections 4.2.3, 5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adapters import DTWAdapter, FrechetAdapter
from repro.core.config import DITAConfig
from repro.core.trie import FilterStats, TrieIndex
from repro.datagen import citywide_dataset, random_walk_dataset
from repro.distances.dtw import dtw
from repro.distances.frechet import frechet
from repro.trajectory import Trajectory


def _all_ids(trie):
    rows = np.asarray(trie.all_rows(), dtype=np.int64)
    return [int(i) for i in trie.dataset.ids_of(rows)]


def _cand_ids(trie, q_pts, tau, adapter, stats=None):
    rows = trie.filter_candidates(q_pts, tau, adapter, stats)
    return {int(i) for i in trie.dataset.ids_of(rows)}


@pytest.fixture(scope="module")
def walks():
    return random_walk_dataset(60, avg_len=10, seed=13)


@pytest.fixture(scope="module")
def trie(walks):
    cfg = DITAConfig(trie_fanout=3, num_pivots=3, trie_leaf_capacity=4, cell_size=0.05)
    return TrieIndex(list(walks), cfg)


class TestConstruction:
    def test_all_trajectories_reachable_exactly_once(self, trie, walks):
        stored = sorted(_all_ids(trie))
        assert stored == sorted(t.traj_id for t in walks)

    def test_height_bounded(self, trie):
        cfg = trie.config
        assert trie.height() <= cfg.num_pivots + 2 + 1  # +1 for the root level

    def test_node_count_positive(self, trie):
        assert trie.node_count() > 1

    def test_short_trajectories_in_short_leaves(self):
        """2-point trajectories end at level 2 and still get indexed."""
        trajs = [Trajectory(i, [(i, i), (i + 1, i)]) for i in range(10)]
        trajs.append(Trajectory(99, [(0, 0), (1, 1), (2, 0), (3, 3), (4, 0), (5, 5)]))
        cfg = DITAConfig(trie_fanout=2, num_pivots=3, trie_leaf_capacity=1, cell_size=0.5)
        trie = TrieIndex(trajs, cfg)
        assert sorted(_all_ids(trie)) == sorted(t.traj_id for t in trajs)

    def test_verification_artifacts_for_every_trajectory(self, trie, walks):
        """The stacked block covers every dataset row with a non-empty
        cell run (verification artifacts are derived per row)."""
        block = trie.batch_block()
        assert sorted(block.ids.tolist()) == sorted(t.traj_id for t in walks)
        runs = np.diff(block.cell_starts)
        for r in trie.dataset.alive_rows():
            assert runs[int(r)] > 0

    def test_size_bytes_positive(self, trie):
        assert trie.size_bytes() > 0

    def test_len(self, trie, walks):
        assert len(trie) == len(walks)


class TestFiltering:
    def _check_no_false_negatives(self, trie, walks, adapter, dist_fn, tau):
        for q in list(walks)[:10]:
            candidates = _cand_ids(trie, q.points, tau, adapter)
            for t in walks:
                if dist_fn(t.points, q.points) <= tau:
                    assert t.traj_id in candidates, (t.traj_id, q.traj_id)

    def test_dtw_superset(self, trie, walks):
        self._check_no_false_negatives(trie, walks, DTWAdapter(), dtw, 0.3)

    def test_dtw_superset_no_suffix(self, trie, walks):
        self._check_no_false_negatives(
            trie, walks, DTWAdapter(use_suffix_pruning=False), dtw, 0.3
        )

    def test_frechet_superset(self, trie, walks):
        self._check_no_false_negatives(trie, walks, FrechetAdapter(), frechet, 0.1)

    def test_self_query_always_candidate(self, trie, walks):
        adapter = DTWAdapter()
        for q in list(walks)[:10]:
            ids = _cand_ids(trie, q.points, 0.0, adapter)
            assert q.traj_id in ids

    def test_filter_prunes_something(self, trie, walks):
        """With a tiny threshold the filter must beat a full scan."""
        adapter = DTWAdapter()
        q = walks[0]
        candidates = trie.filter_candidates(q.points, 1e-6, adapter)
        assert int(candidates.shape[0]) < len(walks)

    def test_stats_populated(self, trie, walks):
        stats = FilterStats()
        trie.filter_candidates(walks[0].points, 0.1, DTWAdapter(), stats)
        assert stats.nodes_visited > 0
        assert stats.candidates >= 0

    def test_monotone_in_tau(self, trie, walks):
        adapter = DTWAdapter()
        q = walks[3]
        small = _cand_ids(trie, q.points, 0.01, adapter)
        large = _cand_ids(trie, q.points, 0.5, adapter)
        assert small <= large


class TestParameterEffects:
    def test_pivot_levels_only_prune(self):
        """K > 0 candidates are a subset of K = 0 candidates: the first two
        (align) levels split identically, and pivot levels only subdivide."""
        data = list(citywide_dataset(120, seed=5))
        tau = 0.003
        cfg0 = DITAConfig(num_pivots=0, trie_fanout=4, trie_leaf_capacity=2, cell_size=0.004)
        cfg4 = cfg0.with_options(num_pivots=4)
        trie0 = TrieIndex(data, cfg0)
        trie4 = TrieIndex(data, cfg4)
        for q in data[:6]:
            c0 = _cand_ids(trie0, q.points, tau, DTWAdapter())
            c4 = _cand_ids(trie4, q.points, tau, DTWAdapter())
            assert c4 <= c0

    def test_leaf_capacity_controls_depth(self):
        data = list(random_walk_dataset(64, avg_len=10, seed=2))
        shallow = TrieIndex(data, DITAConfig(trie_leaf_capacity=64, trie_fanout=4, cell_size=0.05))
        deep = TrieIndex(data, DITAConfig(trie_leaf_capacity=1, trie_fanout=4, cell_size=0.05))
        assert deep.node_count() > shallow.node_count()


class TestMutationVersioning:
    """Derived caches key on an explicit mutation counter, so an equal-size
    remove+insert cycle can never resurrect stale stacked arrays (the old
    length-equality check would have)."""

    def _trie_and_extra(self):
        data = list(random_walk_dataset(24, avg_len=8, seed=9))
        cfg = DITAConfig(trie_fanout=3, num_pivots=2, trie_leaf_capacity=4, cell_size=0.05)
        return TrieIndex(data[:23], cfg), data[23]

    def test_caches_stable_without_mutation(self):
        trie, _ = self._trie_and_extra()
        assert trie.batch_block() is trie.batch_block()
        assert trie.columnar() is trie.columnar()

    def test_equal_size_remove_insert_refreshes_caches(self):
        trie, extra = self._trie_and_extra()
        victim = _all_ids(trie)[0]
        block_before = trie.batch_block()
        columnar_before = trie.columnar()
        assert trie.remove(victim)
        trie.insert(extra)  # same size as before the removal
        block_after = trie.batch_block()
        columnar_after = trie.columnar()
        assert block_after is not block_before
        assert columnar_after is not columnar_before
        member_ids = {
            int(i) for i in trie.dataset.ids_of(columnar_after.member_rows)
        }
        assert extra.traj_id in member_ids
        assert victim not in member_ids

    def test_filtering_sees_replacement(self):
        trie, extra = self._trie_and_extra()
        victim = _all_ids(trie)[0]
        trie.filter_candidates(extra.points, 0.1, DTWAdapter())  # warm caches
        trie.remove(victim)
        trie.insert(extra)
        ids = _cand_ids(trie, extra.points, 100.0, DTWAdapter())
        assert extra.traj_id in ids
        assert victim not in ids
