"""Batched filter-verification vs. the per-pair pipeline.

``Verifier.verify_batch`` over a :class:`TrajectoryBlock` must return the
same matches, in the same order, with the same :class:`VerifyStats`
counts, as calling :meth:`Verifier.verify` per candidate — for every
verifier configuration, including fallbacks (candidates missing from the
block, custom cell bounds with no batch equivalent).  The block cache on
:class:`TrieIndex` must invalidate on insert/remove.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.mbe import MBEIndex, envelope_lower_bound
from repro.core.adapters import get_adapter
from repro.core.config import DITAConfig
from repro.core.trie import TrieIndex
from repro.core.verify import VerificationData, VerifyStats
from repro.datagen import beijing_like
from repro.kernels import TrajectoryBlock, batch_cell_bounds, batch_mbr_coverage
from repro.core.numerics import slack

CELL_SIZE = 0.004
TAU = 0.01


@pytest.fixture(scope="module")
def data():
    return list(beijing_like(80, seed=21))


@pytest.fixture(scope="module")
def verification(data):
    return {t.traj_id: VerificationData.of(t, CELL_SIZE) for t in data}


@pytest.fixture(scope="module")
def block(verification):
    return TrajectoryBlock.from_verification(verification)


def _per_pair(verifier, candidates, q, tau, verification, stats=None):
    out = []
    for t in candidates:
        d = verifier.verify(t, q, tau, verification[t.traj_id],
                            verification[q.traj_id], stats)
        if d <= tau:
            out.append((t, d))
    return out


@pytest.mark.parametrize("distance", ["dtw", "frechet"])
@pytest.mark.parametrize("use_mbr,use_cells", [(True, True), (True, False), (False, True), (False, False)])
def test_batch_matches_per_pair(data, verification, block, distance, use_mbr, use_cells):
    adapter = get_adapter(distance)
    verifier = adapter.make_verifier(use_mbr_coverage=use_mbr, use_cell_filter=use_cells)
    for qi in (0, 13, 55):
        q = data[qi]
        s_loop, s_batch = VerifyStats(), VerifyStats()
        expect = _per_pair(verifier, data, q, TAU, verification, s_loop)
        got = verifier.verify_batch(
            data, q, TAU, verification[q.traj_id], block=block,
            stats=s_batch, data_lookup=verification.get,
        )
        assert [(t.traj_id, d) for t, d in got] == [(t.traj_id, d) for t, d in expect]
        assert s_batch == s_loop


def test_batch_without_block_falls_back(data, verification):
    verifier = get_adapter("dtw").make_verifier()
    q = data[7]
    expect = _per_pair(verifier, data, q, TAU, verification)
    got = verifier.verify_batch(data, q, TAU, verification[q.traj_id],
                                block=None, data_lookup=verification.get)
    assert [(t.traj_id, d) for t, d in got] == [(t.traj_id, d) for t, d in expect]


def test_candidates_missing_from_block_fall_back(data, verification):
    verifier = get_adapter("dtw").make_verifier()
    partial = TrajectoryBlock.from_verification(
        {t.traj_id: verification[t.traj_id] for t in data[: len(data) // 2]}
    )
    q = data[3]
    s_loop, s_batch = VerifyStats(), VerifyStats()
    expect = _per_pair(verifier, data, q, TAU, verification, s_loop)
    got = verifier.verify_batch(data, q, TAU, verification[q.traj_id],
                                block=partial, stats=s_batch,
                                data_lookup=verification.get)
    assert [(t.traj_id, d) for t, d in got] == [(t.traj_id, d) for t, d in expect]
    assert s_batch == s_loop


def test_custom_cell_bound_uses_per_pair_path(data, verification, block):
    adapter = get_adapter("dtw")
    verifier = adapter.make_verifier()
    verifier.cell_bound_fn = lambda a, b: 0.0  # never prunes
    verifier.cell_bound_kind = None
    q = data[11]
    expect = _per_pair(verifier, data, q, TAU, verification)
    got = verifier.verify_batch(data, q, TAU, verification[q.traj_id],
                                block=block, data_lookup=verification.get)
    assert [(t.traj_id, d) for t, d in got] == [(t.traj_id, d) for t, d in expect]


def test_batch_filter_stages_match_scalar_lemmas(data, verification, block):
    """Lemma 5.4 / 5.6 matrix forms agree with the scalar implementations."""
    from repro.core.verify import cell_bound_dtw, cell_bound_frechet, mbr_coverage_ok

    q_data = verification[data[5].traj_id]
    rows = block.rows_for([t.traj_id for t in data])
    tau_s = slack(TAU)
    mask = batch_mbr_coverage(block, rows, q_data.mbr.low, q_data.mbr.high, tau_s)
    for t, ok in zip(data, mask):
        assert bool(ok) == mbr_coverage_ok(verification[t.traj_id].mbr, q_data.mbr, TAU)
    for kind, scalar in (("sum", cell_bound_dtw), ("max", cell_bound_frechet)):
        bounds = batch_cell_bounds(block, rows, q_data.cells, kind)
        for t, b in zip(data, bounds):
            assert b == pytest.approx(
                scalar(verification[t.traj_id].cells, q_data.cells), abs=1e-9
            )


def test_empty_candidates(data, verification, block):
    verifier = get_adapter("dtw").make_verifier()
    assert verifier.verify_batch([], data[0], TAU, verification[data[0].traj_id],
                                 block=block) == []


class TestBlockCache:
    def test_trie_block_invalidated_on_insert_and_remove(self, data):
        cfg = DITAConfig(cell_size=CELL_SIZE)
        trie = TrieIndex(data[:-1], cfg)
        b1 = trie.batch_block()
        assert trie.batch_block() is b1  # cached
        extra = data[-1]
        trie.insert(extra)
        b2 = trie.batch_block()
        assert b2 is not b1
        assert extra.traj_id in b2
        assert len(b2) == len(data)
        assert trie.remove(extra.traj_id)
        b3 = trie.batch_block()
        assert b3 is not b2
        assert extra.traj_id not in b3
        assert len(b3) == len(data) - 1

    def test_block_rows_round_trip(self, data, verification, block):
        ids = [t.traj_id for t in data[::7]]
        rows = block.rows_for(ids)
        assert [int(block.ids[r]) for r in rows] == ids


def test_mbe_stacked_bounds_match_loop(data):
    for distance in ("dtw", "frechet"):
        idx = MBEIndex(data, distance)
        for q in (data[2], data[40]):
            fast = idx.lower_bounds(q.points)
            slow = [envelope_lower_bound(idx._envelopes[t.traj_id], q.points, idx._aggregate)
                    for t in idx._trajs]
            assert np.allclose(fast, slow, rtol=0, atol=1e-12)
        # chunking at any granularity gives identical answers
        tiny = idx.lower_bounds(data[2].points, max_elems=1)
        assert np.allclose(tiny, idx.lower_bounds(data[2].points), rtol=0, atol=0)
