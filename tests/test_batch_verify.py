"""Batched filter-verification vs. the per-pair pipeline.

``Verifier.verify_rows`` over a :class:`TrajectoryBlock` (stacked in the
columnar dataset's row space) must return the same matches, in the same
order, with the same :class:`VerifyStats` counts, as calling
:meth:`Verifier.verify` per candidate — for every verifier configuration,
including custom cell bounds with no batched equivalent.  The block cache
on :class:`TrieIndex` must invalidate on insert/remove.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mbe import MBEIndex, envelope_lower_bound
from repro.core.adapters import get_adapter
from repro.core.config import DITAConfig
from repro.core.numerics import slack
from repro.core.trie import TrieIndex
from repro.core.verify import VerificationData, VerifyStats
from repro.datagen import beijing_like
from repro.kernels import TrajectoryBlock, batch_cell_bounds, batch_mbr_coverage
from repro.storage.columnar import ColumnarDataset

CELL_SIZE = 0.004
TAU = 0.01


@pytest.fixture(scope="module")
def data():
    return list(beijing_like(80, seed=21))


@pytest.fixture(scope="module")
def dataset(data):
    return ColumnarDataset.from_trajectories(data)


@pytest.fixture(scope="module")
def verification(data):
    return {t.traj_id: VerificationData.of(t, CELL_SIZE) for t in data}


@pytest.fixture(scope="module")
def block(dataset):
    return TrajectoryBlock.from_columnar(dataset, CELL_SIZE)


def _per_pair(verifier, candidates, q, tau, verification, stats=None):
    out = []
    for t in candidates:
        d = verifier.verify(t, q, tau, verification[t.traj_id],
                            verification[q.traj_id], stats)
        if d <= tau:
            out.append((t.traj_id, d))
    return out


@pytest.mark.parametrize("distance", ["dtw", "frechet"])
@pytest.mark.parametrize("use_mbr,use_cells", [(True, True), (True, False), (False, True), (False, False)])
def test_rows_match_per_pair(data, dataset, verification, block, distance, use_mbr, use_cells):
    adapter = get_adapter(distance)
    verifier = adapter.make_verifier(use_mbr_coverage=use_mbr, use_cell_filter=use_cells)
    rows = dataset.alive_rows()
    for qi in (0, 13, 55):
        q = data[qi]
        s_loop, s_batch = VerifyStats(), VerifyStats()
        expect = _per_pair(verifier, data, q, TAU, verification, s_loop)
        got = verifier.verify_rows(
            block, dataset, rows, q.points, TAU, verification[q.traj_id], stats=s_batch
        )
        assert [(dataset.id_of(r), d) for r, d in got] == expect
        assert s_batch == s_loop


def test_custom_cell_bound_uses_per_row_path(data, dataset, verification, block):
    adapter = get_adapter("dtw")
    verifier = adapter.make_verifier()
    calls = []

    def custom_bound(cells_t, cells_q):
        calls.append(cells_t)
        return 0.0  # never prunes

    verifier.cell_bound_fn = custom_bound
    verifier.cell_bound_kind = None
    q = data[11]
    loop_verifier = adapter.make_verifier()
    loop_verifier.cell_bound_fn = lambda a, b: 0.0
    loop_verifier.cell_bound_kind = None
    expect = _per_pair(loop_verifier, data, q, TAU, verification)
    got = verifier.verify_rows(
        block, dataset, dataset.alive_rows(), q.points, TAU, verification[q.traj_id]
    )
    assert [(dataset.id_of(r), d) for r, d in got] == expect
    assert calls  # the scalar bound really ran, fed block cell segments


def test_batch_filter_stages_match_scalar_lemmas(data, dataset, verification, block):
    """Lemma 5.4 / 5.6 matrix forms agree with the scalar implementations."""
    from repro.core.verify import cell_bound_dtw, cell_bound_frechet, mbr_coverage_ok

    q_data = verification[data[5].traj_id]
    rows = dataset.alive_rows()
    tau_s = slack(TAU)
    mask = batch_mbr_coverage(block, rows, q_data.mbr.low, q_data.mbr.high, tau_s)
    for t, ok in zip(data, mask):
        assert bool(ok) == mbr_coverage_ok(verification[t.traj_id].mbr, q_data.mbr, TAU)
    for kind, scalar in (("sum", cell_bound_dtw), ("max", cell_bound_frechet)):
        bounds = batch_cell_bounds(block, rows, q_data.cells, kind)
        for t, b in zip(data, bounds):
            assert b == pytest.approx(
                scalar(verification[t.traj_id].cells, q_data.cells), abs=1e-9
            )


def test_empty_candidates(data, dataset, verification, block):
    verifier = get_adapter("dtw").make_verifier()
    got = verifier.verify_rows(
        block, dataset, np.empty(0, dtype=np.int64), data[0].points, TAU,
        verification[data[0].traj_id],
    )
    assert got == []


def test_block_rows_share_dataset_row_space(data, dataset, block):
    assert np.array_equal(block.ids, dataset.traj_ids)
    for r in (0, 7, 41):
        cs = block.cellset_of(r)
        direct = VerificationData.from_points(dataset.points(r), CELL_SIZE)
        assert np.array_equal(cs.centers, direct.cells.centers)
        assert np.array_equal(cs.counts, direct.cells.counts)
        assert np.array_equal(block.mbr_low[r], direct.mbr.low)
        assert np.array_equal(block.mbr_high[r], direct.mbr.high)


class TestBlockCache:
    def test_trie_block_invalidated_on_insert_and_remove(self, data):
        cfg = DITAConfig(cell_size=CELL_SIZE)
        trie = TrieIndex(data[:-1], cfg)
        b1 = trie.batch_block()
        assert trie.batch_block() is b1  # cached
        extra = data[-1]
        trie.insert(extra)
        b2 = trie.batch_block()
        assert b2 is not b1
        assert extra.traj_id in b2.ids.tolist()
        assert len(b2) == len(data)
        assert trie.remove(extra.traj_id)
        b3 = trie.batch_block()
        assert b3 is not b2
        # the tombstoned row stays in the row space but its cells are gone
        row = len(data) - 1
        assert int(b3.cell_starts[row + 1] - b3.cell_starts[row]) == 0
        assert len(trie.dataset) == len(data) - 1


def test_mbe_stacked_bounds_match_loop(data):
    for distance in ("dtw", "frechet"):
        idx = MBEIndex(data, distance)
        for q in (data[2], data[40]):
            fast = idx.lower_bounds(q.points)
            slow = [envelope_lower_bound(idx._envelopes[t.traj_id], q.points, idx._aggregate)
                    for t in idx._trajs]
            assert np.allclose(fast, slow, rtol=0, atol=1e-12)
        # chunking at any granularity gives identical answers
        tiny = idx.lower_bounds(data[2].points, max_elems=1)
        assert np.allclose(tiny, idx.lower_bounds(data[2].points), rtol=0, atol=0)
